package bench

import (
	"bytes"
	"context"
	"crypto/subtle"
	"fmt"
	"net"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ResumeConfig drives the kill-replica-then-resume-elsewhere benchmark:
// Sessions clients attest to replica A, A is killed, and every client then
// replays its handshake against replica B. The run happens twice — once
// with resume replication between the replicas and once without — so the
// report shows the cost the replication layer removes: with it, B resumes
// every session with zero attestation flights; without it, every resumed
// session silently pays a full re-attestation.
type ResumeConfig struct {
	Program  string        // benchmark program (see All); default "Sha1"
	Sessions int           // sessions to establish and resume; default 16
	Timeout  time.Duration // per-operation deadline; default 1m
}

// ResumeModeResult is one mode's half of BENCH_resume.json.
type ResumeModeResult struct {
	Sessions   int `json:"sessions"`
	Resumed    int `json:"resumed"`     // replays answered with the original server key
	ReAttested int `json:"re_attested"` // replays downgraded to a full re-attestation

	// Full attestation flights replica B ran to serve the replays — the
	// headline number: 0 with replication, 1 per session without.
	ExtraAttestFlights   uint64         `json:"extra_attest_flights"`
	ExtraAttestPerResume float64        `json:"extra_attest_flights_per_resume"`
	ResumeLatency        LatencySummary `json:"resume_latency"`
	WallMs               float64        `json:"wall_ms"`
}

// ResumeResult is the JSON document elide-bench -resume writes to
// BENCH_resume.json.
type ResumeResult struct {
	Program    string            `json:"program"`
	Replicated ResumeModeResult  `json:"replicated"`
	Baseline   ResumeModeResult  `json:"baseline"`
	Counters   map[string]uint64 `json:"counters"`
}

func (r *ResumeResult) String() string {
	return fmt.Sprintf(
		"resume bench: %s, %d sessions killed over to a peer replica\n"+
			"  replicated: %d resumed / %d re-attested, %.2f extra attest flights per resume, p50 %.0fµs p99 %.0fµs\n"+
			"  baseline:   %d resumed / %d re-attested, %.2f extra attest flights per resume, p50 %.0fµs p99 %.0fµs",
		r.Program, r.Replicated.Sessions,
		r.Replicated.Resumed, r.Replicated.ReAttested, r.Replicated.ExtraAttestPerResume,
		r.Replicated.ResumeLatency.P50Us, r.Replicated.ResumeLatency.P99Us,
		r.Baseline.Resumed, r.Baseline.ReAttested, r.Baseline.ExtraAttestPerResume,
		r.Baseline.ResumeLatency.P50Us, r.Baseline.ResumeLatency.P99Us)
}

// ResumeBench runs the scenario in both modes and assembles the report.
func ResumeBench(env *Env, cfg ResumeConfig) (*ResumeResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Minute
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
	if err != nil {
		return nil, err
	}
	quoter, err := newQuoteFactory(env, prot)
	if err != nil {
		return nil, err
	}

	res := &ResumeResult{Program: p.Name, Counters: map[string]uint64{}}
	if res.Replicated, err = runResumeMode(env, prot, quoter, cfg, true, res.Counters); err != nil {
		return nil, fmt.Errorf("bench: replicated resume run: %w", err)
	}
	if res.Baseline, err = runResumeMode(env, prot, quoter, cfg, false, res.Counters); err != nil {
		return nil, fmt.Errorf("bench: baseline resume run: %w", err)
	}
	return res, nil
}

// resumeSession is one client's channel state carried across the kill.
type resumeSession struct {
	priv, pub []byte
	quote     *sgx.Quote
	serverPub []byte
}

// runResumeMode provisions replicas A and B (peered when replicate is
// set), establishes every session on A, kills A, and replays every
// session against B.
func runResumeMode(env *Env, prot *elide.Protected, quoter *quoteFactory, cfg ResumeConfig, replicate bool, counters map[string]uint64) (ResumeModeResult, error) {
	out := ResumeModeResult{Sessions: cfg.Sessions}
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = lA.Close()
		return out, err
	}
	mA, mB := obs.NewRegistry(), obs.NewRegistry()
	optsFor := func(m *obs.Registry, peer string) []elide.ServerOption {
		opts := []elide.ServerOption{
			elide.WithServerMetrics(m),
			elide.WithDrainTimeout(100 * time.Millisecond),
		}
		if replicate {
			// The fleet sealing key is what keeps channel keys wrapped on
			// the replication wire; a fixed key is fine for a benchmark.
			opts = append(opts, elide.WithResumeReplication(bytes.Repeat([]byte{0xB7}, 32), peer))
		}
		return opts
	}
	serve := func(l net.Listener, opts []elide.ServerOption) (context.CancelFunc, chan error, error) {
		srv, err := prot.NewServerFor(env.CA, opts...)
		if err != nil {
			return nil, nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ctx, l) }()
		return cancel, served, nil
	}
	killA, servedA, err := serve(lA, optsFor(mA, lB.Addr().String()))
	if err != nil {
		_ = lA.Close()
		_ = lB.Close()
		return out, err
	}
	killedA := false
	defer func() {
		if !killedA {
			killA()
			<-servedA
		}
	}()
	cancelB, servedB, err := serve(lB, optsFor(mB, lA.Addr().String()))
	if err != nil {
		_ = lB.Close()
		return out, err
	}
	defer func() {
		cancelB()
		<-servedB
	}()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	wantMeta := prot.Meta.Marshal()

	sessions := make([]resumeSession, cfg.Sessions)
	for i := range sessions {
		priv, pub, err := sdk.GenerateECDHKeypair()
		if err != nil {
			return out, err
		}
		q, err := quoter.quoteFor(pub)
		if err != nil {
			return out, err
		}
		c := elide.NewTCPClient(lA.Addr().String(),
			elide.WithProtocolVersion(elide.ProtoV1),
			elide.WithDialTimeout(cfg.Timeout),
			elide.WithRequestTimeout(cfg.Timeout),
		)
		spub, err := c.Attest(ctx, q, pub)
		_ = c.Close()
		if err != nil {
			return out, fmt.Errorf("session %d attest: %w", i, err)
		}
		sessions[i] = resumeSession{priv: priv, pub: pub, quote: q, serverPub: spub}
	}

	if replicate {
		// The push is async; the kill must not race it or the run would
		// measure a replication gap, not the steady state.
		deadline := time.Now().Add(10 * time.Second)
		for mB.Counter("server.resume_replicated").Load() < uint64(cfg.Sessions) {
			if time.Now().After(deadline) {
				return out, fmt.Errorf("only %d/%d sessions replicated to the peer",
					mB.Counter("server.resume_replicated").Load(), cfg.Sessions)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	killA()
	<-servedA
	killedA = true

	latency := obs.NewHistogram()
	start := time.Now()
	for i := range sessions {
		ss := &sessions[i]
		c := elide.NewTCPClient(lB.Addr().String(),
			elide.WithProtocolVersion(elide.ProtoV1),
			elide.WithDialTimeout(cfg.Timeout),
			elide.WithRequestTimeout(cfg.Timeout),
		)
		t0 := time.Now()
		spub, err := c.ResumeAttest(ctx, ss.quote, ss.pub)
		if err != nil {
			_ = c.Close()
			return out, fmt.Errorf("session %d resume: %w", i, err)
		}
		latency.Observe(time.Since(t0))
		if bytes.Equal(spub, ss.serverPub) {
			out.Resumed++
		} else {
			out.ReAttested++
		}
		// Whatever key the replica answered with, the channel must work:
		// a resumed session reuses the old key, a downgraded one derives a
		// fresh one — a torn state that does neither is a harness bug.
		err = func() error {
			defer func() { _ = c.Close() }()
			key, err := sdk.DeriveChannelKey(ss.priv, spub)
			if err != nil {
				return err
			}
			defer sdk.Wipe(key)
			enc, err := elide.ChannelSeal(key, []byte{elide.RequestMeta})
			if err != nil {
				return err
			}
			resp, err := c.Request(ctx, enc)
			if err != nil {
				return fmt.Errorf("post-resume request: %w", err)
			}
			meta, err := elide.ChannelOpen(key, resp)
			if err != nil {
				return err
			}
			defer sdk.Wipe(meta)
			if subtle.ConstantTimeCompare(meta, wantMeta) != 1 {
				return fmt.Errorf("post-resume request returned wrong metadata")
			}
			return nil
		}()
		if err != nil {
			return out, fmt.Errorf("session %d: %w", i, err)
		}
	}
	out.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	out.ExtraAttestFlights = mB.Counter("server.attest_ok").Load()
	out.ExtraAttestPerResume = float64(out.ExtraAttestFlights) / float64(cfg.Sessions)
	out.ResumeLatency = summarize(latency.Snapshot())

	prefix := "baseline."
	if replicate {
		prefix = "replicated."
	}
	for _, snap := range []obs.Snapshot{mA.Snapshot(), mB.Snapshot()} {
		for k, v := range snap.Counters {
			counters[prefix+k] += v
		}
	}
	return out, nil
}
