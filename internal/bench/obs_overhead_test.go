package bench

import (
	"fmt"
	"testing"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// coldRestore is one full cold launch + restore of prot on a fresh
// simulated machine — the tracedLaunch path with observability made
// optional, so the two benchmark variants differ only in whether a
// tracer and audit log are attached.
func coldRestore(env *Env, prot *elide.Protected, observed bool) error {
	platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
	if err != nil {
		return err
	}
	host := sdk.NewHost(platform)
	var srvOpts []elide.ServerOption
	var audit *obs.AuditLog
	if observed {
		tracer := obs.NewTracer(0)
		tracer.SetService("client")
		host.Tracer = tracer
		serverTracer := obs.NewTracer(0)
		serverTracer.SetService("server")
		audit = obs.NewAuditLog(0)
		srvOpts = []elide.ServerOption{
			elide.WithServerTracer(serverTracer),
			elide.WithServerAudit(audit),
		}
	}
	srv, err := prot.NewServerFor(env.CA, srvOpts...)
	if err != nil {
		return err
	}
	client := &elide.DirectClient{Session: srv.NewSession()}
	encl, rt, err := prot.Launch(host, client, prot.LocalFiles())
	if err != nil {
		return err
	}
	defer encl.Destroy()
	rt.Audit = audit
	code, err := elide.Restore(encl, elide.FlagSealAfter)
	_ = client.Close()
	if err != nil {
		return err
	}
	if code != elide.RestoreOKServer {
		return fmt.Errorf("restore code %d", code)
	}
	return nil
}

// BenchmarkRestoreObsOverhead quantifies what full observability costs a
// cold restore: "bare" runs with no tracer and no audit log (every obs
// call no-ops through the nil receivers), "observed" runs with a client
// tracer, a server tracer joined to the same trace, and a shared audit
// log — the elide-run -servers + -admin-addr production configuration.
// EXPERIMENTS.md quotes the delta; the budget is <2% on p50.
func BenchmarkRestoreObsOverhead(b *testing.B) {
	env := sharedEnv(b)
	prot, err := BuildProtected(env, Sha1, elide.SanitizeOptions{EncryptLocal: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		observed bool
	}{
		{"bare", false},
		{"observed", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := coldRestore(env, prot, mode.observed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
