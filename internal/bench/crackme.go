package bench

import (
	"fmt"
	"strings"

	"sgxelide/internal/sdk"
)

// The Crackme benchmark ports a password-check reverse-engineering
// challenge (benchmark [7] in the paper — the smallest program). The secret
// is the checking algorithm plus the embedded target digest: with plain SGX
// the attacker can disassemble the check and invert it; with SgxElide the
// code is redacted until the enclave attests.

// crackmePassword is the accepted password (known to the test oracle).
const crackmePassword = "3LiD3_s3cr3t!"

// crackmeHash mirrors the in-enclave obfuscated hash.
func crackmeHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
		h = h<<7 | h>>57
	}
	return h
}

const crackmeEDL = `
enclave {
    trusted {
        public uint64_t ecall_crackme_check([in, string] char* attempt);
    };
    untrusted {
    };
};
`

func crackmeTrustedC() string {
	target := crackmeHash(crackmePassword)
	var sb strings.Builder
	sb.WriteString("/* crackme port: the hidden password check */\n")
	fmt.Fprintf(&sb, "#define CRACKME_TARGET_LO 0x%08xu\n", uint32(target))
	fmt.Fprintf(&sb, "#define CRACKME_TARGET_HI 0x%08xu\n", uint32(target>>32))
	sb.WriteString(`
uint64_t crackme_hash(char* s) {
    uint64_t h = 0xcbf29ce484222325u;
    for (int i = 0; s[i]; i++) {
        h ^= (uint64_t)(uint8_t)s[i];
        h *= 0x100000001b3u;
        h = (h << 7) | (h >> 57);
    }
    return h;
}

uint64_t ecall_crackme_check(char* attempt) {
    uint64_t h = crackme_hash(attempt);
    uint64_t target = ((uint64_t)CRACKME_TARGET_HI << 32) | (uint64_t)CRACKME_TARGET_LO;
    if (h == target) return 1;
    return 0;
}
`)
	return sb.String()
}

// Crackme is the crackme benchmark.
var Crackme = &Program{
	Name:     "Crackme",
	EDL:      crackmeEDL,
	TrustedC: crackmeTrustedC(),
	UCFile:   "crackme.go",
	Workload: crackmeWorkload,
}

// crackmeWorkload runs the challenge directly (it needs no input, as in the
// paper): the right password is accepted, and a brute-force session of
// wrong guesses is rejected every time.
func crackmeWorkload(h *sdk.Host, e *sdk.Enclave) error {
	check := func(attempt string) (bool, error) {
		buf := h.AllocBytes(append([]byte(attempt), 0))
		got, err := e.ECall("ecall_crackme_check", buf)
		return got == 1, err
	}
	ok, err := check(crackmePassword)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("crackme: correct password rejected")
	}
	wrongs := []string{"", "password", "3LiD3_s3cr3t", "3LiD3_s3cr3t!!", "3LiD3_s3crEt!", "aaaaaaaaaaaaa"}
	for i := 0; i < 1500; i++ {
		wrongs = append(wrongs, fmt.Sprintf("guess-%d-%x", i, i*2654435761))
	}
	for _, wrong := range wrongs {
		ok, err := check(wrong)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("crackme: wrong password %q accepted", wrong)
		}
	}
	return nil
}
