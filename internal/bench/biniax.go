package bench

import (
	"bytes"
	"fmt"

	"sgxelide/internal/sdk"
)

// The Biniax benchmark ports the core of the Biniax pair-matching puzzle
// (benchmark [6] in the paper): a scrolling grid of element pairs that the
// player consumes by matching their held element. As with 2048, the game
// logic and the asset-key derivation run inside the enclave and the session
// is verified against a Go reference implementation.

const biniaxEDL = `
enclave {
    trusted {
        public void ecall_biniax_init(uint64_t seed);
        public uint64_t ecall_biniax_step(uint64_t dir);
        public void ecall_biniax_state([out, size=48] uint8_t* out);
        public uint64_t ecall_biniax_score(void);
    };
    untrusted {
    };
};
`

// Grid geometry (shared by the C source and the Go oracle below): 5
// columns by 7 rows, flattened row-major into 35 cells.

const biniaxTrustedC = `
/* Biniax port: pair-matching grid game.
 * Grid cells hold an element pair encoded a*8+b (a,b in 1..4), 0 = empty.
 * The player holds one element and sits on the bottom row; moving onto a
 * pair consumes it if it contains the held element (the player then holds
 * the other half). Every 4 steps the grid scrolls down one row; a pair
 * reaching the player's row ends the game. */

uint8_t bnx_grid[35];     /* 7 rows x 5 cols */
uint64_t bnx_px;          /* player column */
uint64_t bnx_elem;        /* held element 1..4 */
uint64_t bnx_score;
uint64_t bnx_steps;
uint64_t bnx_over;
uint64_t bnx_rng;

uint64_t bnx_rand(void) {
    uint64_t x = bnx_rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bnx_rng = x;
    return x;
}

uint8_t bnx_pair(void) {
    uint64_t a = bnx_rand() % 4 + 1;
    uint64_t b = bnx_rand() % 4 + 1;
    return (uint8_t)(a * 8 + b);
}

void bnx_spawn_row(void) {
    for (int c = 0; c < 5; c++) {
        if (bnx_rand() % 3 == 0) bnx_grid[c] = 0;
        else bnx_grid[c] = bnx_pair();
    }
}

void ecall_biniax_init(uint64_t seed) {
    bnx_rng = seed;
    if (bnx_rng == 0) bnx_rng = 0xB1A;
    for (int i = 0; i < 35; i++) bnx_grid[i] = 0;
    bnx_px = 2;
    bnx_elem = bnx_rand() % 4 + 1;
    bnx_score = 0;
    bnx_steps = 0;
    bnx_over = 0;
    for (int r = 0; r < 3; r++) {
        bnx_spawn_row();
        if (r < 2) {
            for (int rr = 6; rr > 0; rr--)
                for (int c = 0; c < 5; c++)
                    bnx_grid[rr * 5 + c] = bnx_grid[(rr - 1) * 5 + c];
            for (int c = 0; c < 5; c++) bnx_grid[c] = 0;
        }
    }
}

void bnx_scroll(void) {
    /* A pair on the row above the player crushes the game when it scrolls in. */
    for (int c = 0; c < 5; c++)
        if (bnx_grid[6 * 5 + c]) {
            bnx_over = 1;
            return;
        }
    for (int r = 6; r > 0; r--)
        for (int c = 0; c < 5; c++)
            bnx_grid[r * 5 + c] = bnx_grid[(r - 1) * 5 + c];
    bnx_spawn_row();
}

/* dir: 0=left 1=right 2=take (consume the pair directly above).
 * Returns 1 while the game is alive, 0 once over. */
uint64_t ecall_biniax_step(uint64_t dir) {
    if (bnx_over) return 0;
    if (dir == 0 && bnx_px > 0) bnx_px--;
    else if (dir == 1 && bnx_px < 4) bnx_px++;
    else if (dir == 2) {
        uint8_t cell = bnx_grid[6 * 5 + bnx_px];
        if (cell == 0) cell = bnx_grid[5 * 5 + bnx_px];
        uint64_t a = cell >> 3;
        uint64_t b = cell & 7;
        if (cell) {
            if (a == bnx_elem) {
                bnx_elem = b;
                bnx_score++;
                bnx_grid[6 * 5 + bnx_px] = 0;
                bnx_grid[5 * 5 + bnx_px] = 0;
            } else if (b == bnx_elem) {
                bnx_elem = a;
                bnx_score++;
                bnx_grid[6 * 5 + bnx_px] = 0;
                bnx_grid[5 * 5 + bnx_px] = 0;
            }
        }
    }
    bnx_steps++;
    if (bnx_steps % 4 == 0) bnx_scroll();
    if (bnx_over) return 0;
    return 1;
}

void ecall_biniax_state(uint8_t* out) {
    for (int i = 0; i < 35; i++) out[i] = bnx_grid[i];
    out[35] = (uint8_t)bnx_px;
    out[36] = (uint8_t)bnx_elem;
    out[37] = (uint8_t)bnx_over;
    out[38] = (uint8_t)bnx_steps;
    out[39] = 0;
    for (int i = 0; i < 8; i++) out[40 + i] = (uint8_t)(bnx_score >> (i * 8));
}

uint64_t ecall_biniax_score(void) {
    return bnx_score;
}
`

// Biniax is the Biniax benchmark.
var Biniax = &Program{
	Name:     "Biniax",
	EDL:      biniaxEDL,
	TrustedC: biniaxTrustedC,
	UCFile:   "biniax.go",
	Workload: biniaxWorkload,
	IsGame:   true,
}

// --- Go reference implementation ---

type refBiniax struct {
	grid  [35]byte
	px    uint64
	elem  uint64
	score uint64
	steps uint64
	over  bool
	rng   uint64
}

func (g *refBiniax) rand() uint64 {
	x := g.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	g.rng = x
	return x
}

func (g *refBiniax) pair() byte {
	a := g.rand()%4 + 1
	b := g.rand()%4 + 1
	return byte(a*8 + b)
}

func (g *refBiniax) spawnRow() {
	for c := 0; c < 5; c++ {
		if g.rand()%3 == 0 {
			g.grid[c] = 0
		} else {
			g.grid[c] = g.pair()
		}
	}
}

func (g *refBiniax) init(seed uint64) {
	*g = refBiniax{rng: seed}
	if g.rng == 0 {
		g.rng = 0xB1A
	}
	g.px = 2
	g.elem = g.rand()%4 + 1
	for r := 0; r < 3; r++ {
		g.spawnRow()
		if r < 2 {
			for rr := 6; rr > 0; rr-- {
				copy(g.grid[rr*5:rr*5+5], g.grid[(rr-1)*5:(rr-1)*5+5])
			}
			for c := 0; c < 5; c++ {
				g.grid[c] = 0
			}
		}
	}
}

func (g *refBiniax) scroll() {
	for c := 0; c < 5; c++ {
		if g.grid[6*5+c] != 0 {
			g.over = true
			return
		}
	}
	for r := 6; r > 0; r-- {
		copy(g.grid[r*5:r*5+5], g.grid[(r-1)*5:(r-1)*5+5])
	}
	g.spawnRow()
}

func (g *refBiniax) step(dir uint64) uint64 {
	if g.over {
		return 0
	}
	switch {
	case dir == 0 && g.px > 0:
		g.px--
	case dir == 1 && g.px < 4:
		g.px++
	case dir == 2:
		cell := g.grid[6*5+g.px]
		if cell == 0 {
			cell = g.grid[5*5+g.px]
		}
		a, b := uint64(cell>>3), uint64(cell&7)
		if cell != 0 {
			if a == g.elem {
				g.elem = b
				g.score++
				g.grid[6*5+g.px] = 0
				g.grid[5*5+g.px] = 0
			} else if b == g.elem {
				g.elem = a
				g.score++
				g.grid[6*5+g.px] = 0
				g.grid[5*5+g.px] = 0
			}
		}
	}
	g.steps++
	if g.steps%4 == 0 {
		g.scroll()
	}
	if g.over {
		return 0
	}
	return 1
}

func (g *refBiniax) state() []byte {
	out := make([]byte, 48)
	copy(out, g.grid[:])
	out[35] = byte(g.px)
	out[36] = byte(g.elem)
	if g.over {
		out[37] = 1
	}
	out[38] = byte(g.steps)
	for i := 0; i < 8; i++ {
		out[40+i] = byte(g.score >> (i * 8))
	}
	return out
}

// biniaxWorkload plays a scripted session and compares full state with the
// reference every step.
func biniaxWorkload(h *sdk.Host, e *sdk.Enclave) error {
	const seed = 0xB14A ^ 0xFFFF
	var ref refBiniax
	ref.init(seed)
	if _, err := e.ECall("ecall_biniax_init", seed); err != nil {
		return err
	}
	stateBuf := h.Alloc(48)
	script := []uint64{2, 0, 2, 1, 1, 2, 2, 0, 0, 2, 1, 2, 2, 1, 2, 0, 2, 2, 1, 2, 0, 0, 2, 1, 2, 2, 2, 0, 2, 1}
	for step, dir := range script {
		want := ref.step(dir)
		got, err := e.ECall("ecall_biniax_step", dir)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("biniax step %d: alive=%d, ref=%d", step, got, want)
		}
		if _, err := e.ECall("ecall_biniax_state", stateBuf); err != nil {
			return err
		}
		if gotState := h.ReadBytes(stateBuf, 48); !bytes.Equal(gotState, ref.state()) {
			return fmt.Errorf("biniax step %d: state mismatch\n got %v\nwant %v", step, gotState, ref.state())
		}
	}
	score, err := e.ECall("ecall_biniax_score")
	if err != nil {
		return err
	}
	if score != ref.score {
		return fmt.Errorf("biniax: score %d, want %d", score, ref.score)
	}
	return nil
}
