package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ChaosConfig drives the restore-survivability chaos run: Restores full
// protocol runs against Replicas replicated authentication servers while
// the harness kills (and optionally restarts) servers mid-run and injects
// scripted connection faults. The deployment is hybrid — data on the
// servers *and* in the encrypted local file — so every strategy of the
// degradation chain is reachable.
type ChaosConfig struct {
	Program      string        // benchmark program (see All); default "Sha1"
	Replicas     int           // replicated auth servers; default 3
	Restores     int           // total restores to drive; default 48
	Workers      int           // concurrent restore workers; default 8
	FaultEvery   int           // inject a scripted fault on every k-th dial (0 = off); default 5
	RestartDelay time.Duration // how long replica 0 stays dead before restarting; default 500ms, < 0 = never restart
	Timeout      time.Duration // per-restore deadline; default 2m
}

// ChaosResult is the JSON document elide-bench -chaos writes to
// BENCH_chaos.json. Succeeded + TypedFailures + UntypedFailures ==
// Restores; a correct run has UntypedFailures == 0 (every failure is a
// classified, typed error) and WorkloadFailures == 0 (no restore that
// reported success produced wrong code).
type ChaosResult struct {
	Program    string  `json:"program"`
	Replicas   int     `json:"replicas"`
	Restores   int     `json:"restores"`
	Workers    int     `json:"workers"`
	FaultEvery int     `json:"fault_every"`
	WallMs     float64 `json:"wall_ms"`

	Succeeded        int `json:"succeeded"`
	TypedFailures    int `json:"typed_failures"`
	UntypedFailures  int `json:"untyped_failures"`
	WorkloadFailures int `json:"workload_failures"`

	// Per-strategy success counts: which link of the degradation chain
	// produced the bytes.
	SourceSealed int `json:"source_sealed"`
	SourceServer int `json:"source_server"`
	SourceLocal  int `json:"source_local"`

	Kills        int    `json:"kills"`
	Restarts     int    `json:"restarts"`
	Failovers    uint64 `json:"failovers"`
	BreakerTrips uint64 `json:"breaker_trips"`
	SessionsLost uint64 `json:"sessions_lost"`
	RetriedRuns  uint64 `json:"retried_runs"` // protocol runs beyond each restore's first

	RestoreLatency LatencySummary    `json:"restore_latency"`
	Counters       map[string]uint64 `json:"counters"`
}

func (r *ChaosResult) String() string {
	return fmt.Sprintf(
		"chaos bench: %s, %d replicas, %d restores (%d workers, fault every %d dials): "+
			"%d ok / %d typed / %d untyped failures in %.1f ms\n"+
			"  sources: %d server, %d local, %d sealed; %d kills, %d restarts, "+
			"%d failovers, %d breaker trips, %d sessions lost\n"+
			"  restore p50 %.0fµs  p90 %.0fµs  p99 %.0fµs",
		r.Program, r.Replicas, r.Restores, r.Workers, r.FaultEvery,
		r.Succeeded, r.TypedFailures, r.UntypedFailures, r.WallMs,
		r.SourceServer, r.SourceLocal, r.SourceSealed, r.Kills, r.Restarts,
		r.Failovers, r.BreakerTrips, r.SessionsLost,
		r.RestoreLatency.P50Us, r.RestoreLatency.P90Us, r.RestoreLatency.P99Us)
}

// replica is one auth server the chaos controller can kill and restart.
type replica struct {
	prot *elide.Protected
	env  *Env
	msrv *obs.Registry

	// optsFor, when set, contributes extra server options per (re)start —
	// the churn harness wires gossip here, where the bound address that
	// the options need is finally known.
	optsFor func(addr string) []elide.ServerOption

	mu     sync.Mutex
	addr   string
	srv    *elide.Server
	cancel context.CancelFunc
	served chan error
}

// start listens (reusing the replica's address after a restart) and serves
// until killed.
func (r *replica) start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	addr := r.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	var err error
	// A restart reuses the address the pool already knows; the old socket
	// may linger briefly, so retry the bind.
	for i := 0; i < 20; i++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return err
	}
	r.addr = l.Addr().String()
	// A short drain keeps kills abrupt — that is the point of the exercise.
	opts := []elide.ServerOption{
		elide.WithServerMetrics(r.msrv),
		elide.WithDrainTimeout(100 * time.Millisecond),
	}
	if r.optsFor != nil {
		opts = append(opts, r.optsFor(r.addr)...)
	}
	srv, err := r.prot.NewServerFor(r.env.CA, opts...)
	if err != nil {
		_ = l.Close() // listener never served; nothing depends on the close
		return err
	}
	r.srv = srv
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.served = make(chan error, 1)
	served := r.served
	go func() { served <- srv.Serve(ctx, l) }()
	return nil
}

// server returns the currently serving *elide.Server (the latest start's).
func (r *replica) server() *elide.Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srv
}

// kill stops the replica and waits for the server to drain.
func (r *replica) kill() {
	r.mu.Lock()
	cancel, served := r.cancel, r.served
	r.cancel, r.served = nil, nil
	r.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-served
}

// ChaosBench provisions the replicated deployment and drives cfg.Restores
// concurrent resilient restores through it while the controller kills
// replica 0 after ~1/3 of the restores have finished (restarting it after
// RestartDelay when set) and kills replica 1 for good after ~2/3. Every
// restore must either succeed — through any strategy in the degradation
// chain — or fail with a typed, classified error; untyped failures are
// counted separately and indicate a survivability bug.
func ChaosBench(env *Env, cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Restores <= 0 {
		cfg.Restores = 48
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.FaultEvery < 0 {
		cfg.FaultEvery = 0
	} else if cfg.FaultEvery == 0 {
		cfg.FaultEvery = 5
	}
	if cfg.RestartDelay == 0 {
		cfg.RestartDelay = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	// Hybrid deployment: the degradation chain's local-file strategy stays
	// reachable when every replica is momentarily unreachable mid-protocol.
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{Hybrid: true})
	if err != nil {
		return nil, err
	}

	serverMetrics := obs.NewRegistry()
	replicas := make([]*replica, cfg.Replicas)
	addrs := make([]string, cfg.Replicas)
	for i := range replicas {
		replicas[i] = &replica{prot: prot, env: env, msrv: serverMetrics}
		if err := replicas[i].start(); err != nil {
			return nil, err
		}
		addrs[i] = replicas[i].addr
	}
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()

	poolMetrics := obs.NewRegistry()
	clientMetrics := obs.NewRegistry()
	runtimeMetrics := obs.NewRegistry()
	chaosMetrics := obs.NewRegistry()

	// Scripted dial faults: every FaultEvery-th connection anywhere in the
	// run dies on its first I/O operation — after the dial succeeded, which
	// is the window ad-hoc kill timing cannot hit deterministically.
	var dials atomic.Int64
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if cfg.FaultEvery > 0 && dials.Add(1)%int64(cfg.FaultEvery) == 0 {
			return elide.NewFaultConn(conn).WithScript(
				elide.FaultAction{Op: elide.OpAny, Fail: true},
			), nil
		}
		return conn, nil
	}

	// One shared endpoint pool for the whole fleet: the machine's view of
	// replica health is collective, so a kill observed by one worker trips
	// the breaker for all of them.
	pool := elide.NewEndpointPool(addrs,
		elide.WithFailoverMetrics(poolMetrics),
		elide.WithBreakerCooldown(200*time.Millisecond),
		elide.WithEndpointClientOptions(
			elide.WithDialer(dial),
			elide.WithClientMetrics(clientMetrics),
			elide.WithMaxRetries(1),
			elide.WithBackoff(10*time.Millisecond, 100*time.Millisecond),
			elide.WithDialTimeout(10*time.Second),
			elide.WithRequestTimeout(30*time.Second),
		),
	)

	var (
		completed atomic.Int64
		kills     atomic.Int64
		restarts  atomic.Int64
	)
	// Chaos controller: kill replica 0 once a third of the restores are
	// done (restart it after RestartDelay when configured); kill replica 1
	// for good at two thirds, leaving one live replica plus local files.
	ctlCtx, ctlStop := context.WithCancel(context.Background())
	defer ctlStop()
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		killed0, killed1 := false, false
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctlCtx.Done():
				return
			case <-t.C:
			}
			done := int(completed.Load())
			if !killed0 && done >= cfg.Restores/3 {
				killed0 = true
				replicas[0].kill()
				kills.Add(1)
				if cfg.RestartDelay > 0 {
					delay := cfg.RestartDelay
					ctlWG.Add(1)
					go func() {
						defer ctlWG.Done()
						select {
						case <-ctlCtx.Done():
							return
						case <-time.After(delay):
						}
						if replicas[0].start() == nil {
							restarts.Add(1)
						}
					}()
				}
			}
			if !killed1 && cfg.Replicas > 2 && done >= 2*cfg.Restores/3 {
				killed1 = true
				replicas[1].kill()
				kills.Add(1)
			}
		}
	}()

	type jobResult struct {
		outcome *elide.RestoreOutcome
		err     error
		wlErr   error
	}
	results := make([]jobResult, cfg.Restores)
	jobs := make(chan int)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runChaosJob(env, prot, p, pool, runtimeMetrics, chaosMetrics, cfg.Timeout)
				completed.Add(1)
			}
		}()
	}
	for i := 0; i < cfg.Restores; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	ctlStop()
	ctlWG.Wait()

	res := &ChaosResult{
		Program:    p.Name,
		Replicas:   cfg.Replicas,
		Restores:   cfg.Restores,
		Workers:    cfg.Workers,
		FaultEvery: cfg.FaultEvery,
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
		Kills:      int(kills.Load()),
		Restarts:   int(restarts.Load()),
	}
	for i := range results {
		r := &results[i]
		switch {
		case r.err == nil && r.wlErr == nil:
			res.Succeeded++
			switch r.outcome.Source {
			case "sealed":
				res.SourceSealed++
			case "local":
				res.SourceLocal++
			default:
				res.SourceServer++
			}
		case r.err == nil:
			res.WorkloadFailures++
		case errors.Is(r.err, elide.ErrRestoreFailed),
			errors.Is(r.err, context.DeadlineExceeded),
			errors.Is(r.err, context.Canceled):
			res.TypedFailures++
		default:
			res.UntypedFailures++
		}
	}

	psnap := poolMetrics.Snapshot()
	csnap := chaosMetrics.Snapshot()
	rsnap := runtimeMetrics.Snapshot()
	res.Failovers = psnap.Counters["failover.switches"]
	res.BreakerTrips = psnap.Counters["failover.breaker_trips"]
	res.SessionsLost = psnap.Counters["failover.session_lost"]
	res.RetriedRuns = rsnap.Counters["restore.retries"]
	res.RestoreLatency = summarize(csnap.Histograms["chaos.restore_ns"])
	res.Counters = map[string]uint64{}
	for _, snap := range []obs.Snapshot{psnap, rsnap, clientMetrics.Snapshot(), serverMetrics.Snapshot()} {
		for k, v := range snap.Counters {
			res.Counters[k] += v
		}
	}
	return res, nil
}

// runChaosJob is one user machine's full flow under chaos: provision a
// platform, build a failover client over the replica pool, drive a
// resilient restore, and verify the restored code actually computes (the
// workload is the last line of defence against a torn restore escaping
// detection).
func runChaosJob(
	env *Env, prot *elide.Protected, p *Program, pool *elide.EndpointPool,
	runtimeMetrics, chaosMetrics *obs.Registry, timeout time.Duration,
) (res struct {
	outcome *elide.RestoreOutcome
	err     error
	wlErr   error
}) {
	defer chaosMetrics.Observe("chaos.restore_ns", time.Now())
	platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
	if err != nil {
		res.err = err
		return res
	}
	host := sdk.NewHost(platform)
	host.Metrics = runtimeMetrics
	// The pool (breakers, health) is fleet-shared; the client (session,
	// channel binding) is per-restore.
	fc := elide.NewFailoverClientFromPool(pool)
	defer fc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	encl, rt, err := prot.LaunchContext(ctx, host, fc, prot.LocalFiles())
	if err != nil {
		res.err = err
		return res
	}
	defer encl.Destroy()
	res.outcome, res.err = elide.RestoreResilient(ctx, encl, rt, elide.RestoreOptions{
		MaxAttempts: 4,
		Backoff:     25 * time.Millisecond,
	})
	if res.err == nil {
		res.wlErr = p.Workload(host, encl)
	}
	return res
}
