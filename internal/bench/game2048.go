package bench

import (
	"bytes"
	"fmt"
	"strings"

	"sgxelide/internal/sdk"
)

// The 2048 benchmark ports the z2048 game (benchmark [5] in the paper):
// the full board logic (slide/merge/spawn with a deterministic PRNG) runs
// inside the enclave. Per the paper, the secret worth protecting in a game
// is the asset-loading/decryption code, so the enclave also carries an
// encrypted asset that only the secret code can decrypt. The workload plays
// a scripted session verified against a Go reference implementation of the
// identical logic.

// game2048Asset is the "game asset" embedded encrypted in the enclave.
const game2048Asset = `
  +----------------------+
  |   2048 — GAME OVER   |
  |  thanks for playing  |
  +----------------------+
`

// game2048AssetKey is the asset obfuscation key baked into the secret code.
var game2048AssetKey = [16]byte{0x42, 0x13, 0x37, 0x99, 0xAA, 0x01, 0x55, 0x10,
	0xFE, 0xED, 0xFA, 0xCE, 0x12, 0x34, 0x56, 0x78}

// game2048EncryptAsset applies the (deliberately simple, DRM-style) asset
// stream cipher: XOR with key bytes and a position-mixed value.
func game2048EncryptAsset(plain []byte) []byte {
	out := make([]byte, len(plain))
	for i, b := range plain {
		out[i] = b ^ game2048AssetKey[i%16] ^ byte(i*7)
	}
	return out
}

const game2048EDL = `
enclave {
    trusted {
        public void ecall_2048_init(uint64_t seed);
        public uint64_t ecall_2048_move(uint64_t dir);
        public void ecall_2048_board([out, size=16] uint8_t* out);
        public uint64_t ecall_2048_score(void);
        public uint64_t ecall_2048_asset([out, size=cap] uint8_t* buf, uint64_t cap);
    };
    untrusted {
    };
};
`

func game2048TrustedC() string {
	enc := game2048EncryptAsset([]byte(game2048Asset))
	var sb strings.Builder
	sb.WriteString("/* z2048 port: board logic + protected asset decryption */\n")
	sb.WriteString(cByteTable("g2048_asset_enc", enc))
	sb.WriteString(cByteTable("g2048_asset_key", game2048AssetKey[:]))
	fmt.Fprintf(&sb, "\n#define G2048_ASSET_LEN %d\n", len(enc))
	sb.WriteString(`
uint8_t g2048_board[16];
uint64_t g2048_score;
uint64_t g2048_rng;

uint64_t g2048_rand(void) {
    uint64_t x = g2048_rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    g2048_rng = x;
    return x;
}

void g2048_spawn(void) {
    int empty = 0;
    for (int i = 0; i < 16; i++)
        if (g2048_board[i] == 0) empty++;
    if (empty == 0) return;
    int pick = (int)(g2048_rand() % (uint64_t)empty);
    uint8_t val = 1;
    if (g2048_rand() % 10 == 0) val = 2;
    for (int i = 0; i < 16; i++) {
        if (g2048_board[i] == 0) {
            if (pick == 0) {
                g2048_board[i] = val;
                return;
            }
            pick--;
        }
    }
}

/* Slide-and-merge one line of 4 cells toward index 0; returns 1 if any
 * cell changed. */
int g2048_slide_line(uint8_t* line) {
    uint8_t out[4];
    int n = 0;
    int moved = 0;
    for (int i = 0; i < 4; i++)
        if (line[i]) {
            out[n] = line[i];
            n++;
        }
    for (int i = 0; i + 1 < n; i++) {
        if (out[i] == out[i + 1]) {
            out[i]++;
            g2048_score += (uint64_t)1 << out[i];
            for (int j = i + 1; j + 1 < n; j++) out[j] = out[j + 1];
            n--;
        }
    }
    for (int i = n; i < 4; i++) out[i] = 0;
    for (int i = 0; i < 4; i++) {
        if (line[i] != out[i]) moved = 1;
        line[i] = out[i];
    }
    return moved;
}

/* dir: 0=left 1=right 2=up 3=down */
uint64_t ecall_2048_move(uint64_t dir) {
    uint8_t line[4];
    int moved = 0;
    for (int k = 0; k < 4; k++) {
        for (int i = 0; i < 4; i++) {
            int idx;
            if (dir == 0) idx = k * 4 + i;
            else if (dir == 1) idx = k * 4 + (3 - i);
            else if (dir == 2) idx = i * 4 + k;
            else idx = (3 - i) * 4 + k;
            line[i] = g2048_board[idx];
        }
        if (g2048_slide_line(line)) moved = 1;
        for (int i = 0; i < 4; i++) {
            int idx;
            if (dir == 0) idx = k * 4 + i;
            else if (dir == 1) idx = k * 4 + (3 - i);
            else if (dir == 2) idx = i * 4 + k;
            else idx = (3 - i) * 4 + k;
            g2048_board[idx] = line[i];
        }
    }
    if (moved) g2048_spawn();
    return (uint64_t)moved;
}

void ecall_2048_init(uint64_t seed) {
    for (int i = 0; i < 16; i++) g2048_board[i] = 0;
    g2048_score = 0;
    g2048_rng = seed;
    if (g2048_rng == 0) g2048_rng = 0x2048;
    g2048_spawn();
    g2048_spawn();
}

void ecall_2048_board(uint8_t* out) {
    for (int i = 0; i < 16; i++) out[i] = g2048_board[i];
}

uint64_t ecall_2048_score(void) {
    return g2048_score;
}

/* The protected asset loader: decrypts the embedded asset (the function
 * the paper's game benchmarks keep secret). */
uint64_t ecall_2048_asset(uint8_t* buf, uint64_t cap) {
    if (cap < G2048_ASSET_LEN) return 0;
    for (int i = 0; i < G2048_ASSET_LEN; i++)
        buf[i] = (uint8_t)(g2048_asset_enc[i] ^ g2048_asset_key[i % 16] ^ (uint8_t)(i * 7));
    return G2048_ASSET_LEN;
}
`)
	return sb.String()
}

// Game2048 is the z2048 benchmark.
var Game2048 = &Program{
	Name:     "2048",
	EDL:      game2048EDL,
	TrustedC: game2048TrustedC(),
	UCFile:   "game2048.go",
	Workload: game2048Workload,
	IsGame:   true,
}

// --- Go reference implementation (the test oracle) ---

type ref2048 struct {
	board [16]byte
	score uint64
	rng   uint64
}

func (g *ref2048) rand() uint64 {
	x := g.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	g.rng = x
	return x
}

func (g *ref2048) spawn() {
	empty := 0
	for _, c := range g.board {
		if c == 0 {
			empty++
		}
	}
	if empty == 0 {
		return
	}
	pick := int(g.rand() % uint64(empty))
	val := byte(1)
	if g.rand()%10 == 0 {
		val = 2
	}
	for i, c := range g.board {
		if c == 0 {
			if pick == 0 {
				g.board[i] = val
				return
			}
			pick--
		}
	}
}

func (g *ref2048) init(seed uint64) {
	*g = ref2048{rng: seed}
	if g.rng == 0 {
		g.rng = 0x2048
	}
	g.spawn()
	g.spawn()
}

func (g *ref2048) slideLine(line []byte) bool {
	var out [4]byte
	n := 0
	moved := false
	for i := 0; i < 4; i++ {
		if line[i] != 0 {
			out[n] = line[i]
			n++
		}
	}
	for i := 0; i+1 < n; i++ {
		if out[i] == out[i+1] {
			out[i]++
			g.score += uint64(1) << out[i]
			for j := i + 1; j+1 < n; j++ {
				out[j] = out[j+1]
			}
			n--
		}
	}
	for i := n; i < 4; i++ {
		out[i] = 0
	}
	for i := 0; i < 4; i++ {
		if line[i] != out[i] {
			moved = true
		}
		line[i] = out[i]
	}
	return moved
}

func (g *ref2048) move(dir int) bool {
	idx := func(k, i int) int {
		switch dir {
		case 0:
			return k*4 + i
		case 1:
			return k*4 + (3 - i)
		case 2:
			return i*4 + k
		default:
			return (3-i)*4 + k
		}
	}
	moved := false
	for k := 0; k < 4; k++ {
		var line [4]byte
		for i := 0; i < 4; i++ {
			line[i] = g.board[idx(k, i)]
		}
		if g.slideLine(line[:]) {
			moved = true
		}
		for i := 0; i < 4; i++ {
			g.board[idx(k, i)] = line[i]
		}
	}
	if moved {
		g.spawn()
	}
	return moved
}

// game2048Workload plays a scripted session, comparing board, score, and
// move results with the reference after every move, then loads the
// protected asset.
func game2048Workload(h *sdk.Host, e *sdk.Enclave) error {
	const seed = 20481234
	var ref ref2048
	ref.init(seed)
	if _, err := e.ECall("ecall_2048_init", seed); err != nil {
		return err
	}
	boardBuf := h.Alloc(16)
	script := []int{0, 2, 1, 3, 0, 0, 2, 2, 1, 3, 0, 2, 1, 1, 3, 3, 0, 2, 0, 2, 1, 3, 0, 2, 1, 0, 2, 3, 1, 0}
	for step, dir := range script {
		refMoved := ref.move(dir)
		moved, err := e.ECall("ecall_2048_move", uint64(dir))
		if err != nil {
			return err
		}
		if (moved != 0) != refMoved {
			return fmt.Errorf("2048 step %d: moved=%v, ref=%v", step, moved != 0, refMoved)
		}
		if _, err := e.ECall("ecall_2048_board", boardBuf); err != nil {
			return err
		}
		if got := h.ReadBytes(boardBuf, 16); !bytes.Equal(got, ref.board[:]) {
			return fmt.Errorf("2048 step %d: board mismatch\n got %v\nwant %v", step, got, ref.board)
		}
	}
	score, err := e.ECall("ecall_2048_score")
	if err != nil {
		return err
	}
	if score != ref.score {
		return fmt.Errorf("2048: score %d, want %d", score, ref.score)
	}
	// The protected asset decrypts correctly.
	assetBuf := h.Alloc(len(game2048Asset) + 16)
	n, err := e.ECall("ecall_2048_asset", assetBuf, uint64(len(game2048Asset)+16))
	if err != nil {
		return err
	}
	if int(n) != len(game2048Asset) {
		return fmt.Errorf("2048: asset length %d, want %d", n, len(game2048Asset))
	}
	if got := h.ReadBytes(assetBuf, int(n)); string(got) != game2048Asset {
		return fmt.Errorf("2048: asset decryption mismatch: %q", got)
	}
	return nil
}
