package bench

import (
	"testing"
	"time"
)

// TestChaosBenchSmoke drives a scaled-down chaos run — replicated servers,
// a mid-run kill with restart, scripted dial faults — and asserts the
// survivability contract: every restore either succeeds (through any link
// of the degradation chain) or fails with a typed, classified error, and
// no restore that reported success computes wrong answers.
func TestChaosBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	cfg := ChaosConfig{
		Replicas:     3,
		Restores:     12,
		Workers:      4,
		FaultEvery:   4,
		RestartDelay: 300 * time.Millisecond,
	}
	if testing.Short() {
		cfg.Replicas = 2
		cfg.Restores = 6
		cfg.Workers = 2
	}
	res, err := ChaosBench(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.UntypedFailures != 0 {
		t.Fatalf("%d restores failed with untyped errors", res.UntypedFailures)
	}
	if res.WorkloadFailures != 0 {
		t.Fatalf("%d successful restores computed wrong answers", res.WorkloadFailures)
	}
	if res.Succeeded == 0 {
		t.Fatal("no restore succeeded at all")
	}
	if res.Kills == 0 {
		t.Fatal("the chaos controller never killed a replica")
	}
	// The success rate floor: with N-1 replicas surviving plus the hybrid
	// local file, losing a server must not take down more than the restores
	// in flight with it — demand a strong majority succeed.
	if res.Succeeded*4 < res.Restores*3 {
		t.Fatalf("only %d/%d restores succeeded", res.Succeeded, res.Restores)
	}
}
