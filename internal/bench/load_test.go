package bench

import (
	"testing"
	"time"
)

// TestLoadBenchSmoke runs a miniature open-loop load test — enough
// arrivals to exercise the arrival scheduler, the protocol-level clients,
// and both wire protocols — and checks the two headline claims: the
// pipelined protocol completes a restore in one network flight, the
// legacy protocol in three.
func TestLoadBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	res, err := LoadBench(env, LoadBenchConfig{
		Program:  "Sha1",
		Rate:     200,
		Restores: 30,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []*LoadRunResult{res.Pipelined, res.Legacy} {
		if run.Completed != run.Offered {
			t.Errorf("%s: %d/%d restores completed (%d errors)",
				run.Protocol, run.Completed, run.Offered, run.Errors)
		}
		if run.Latency.Count == 0 {
			t.Errorf("%s: no latency samples", run.Protocol)
		}
		if len(run.ThroughputRPS) == 0 {
			t.Errorf("%s: empty throughput curve", run.Protocol)
		}
	}
	// The round-trip collapse is the tentpole claim: exactly one wire
	// flight per pipelined restore, exactly three per legacy restore
	// (attest, REQUEST_META, REQUEST_DATA). Equality, not a bound —
	// retries would push these up and they are disabled here.
	if got := res.Pipelined.FlightsPerRestore; got != 1 {
		t.Errorf("pipelined flights/restore: got %v, want exactly 1", got)
	}
	if got := res.Legacy.FlightsPerRestore; got != 3 {
		t.Errorf("legacy flights/restore: got %v, want exactly 3", got)
	}
	if res.Pipelined.ClientCounters["client.bundle_hits"] == 0 {
		t.Error("pipelined run served no requests from the bundle cache")
	}
}
