// Package bench ports the seven benchmark programs of the SgxElide paper
// (Table 1) to the EVM enclave platform and provides the harness that
// regenerates the paper's evaluation: Table 1 (benchmark/sanitizer
// statistics), Table 2 (sanitize/restore times), and Figures 3 and 4
// (end-to-end overhead with remote and local data).
//
// Each benchmark consists of a trusted component (mini-C, compiled into the
// enclave — the secret code) and an untrusted component (the Go driver
// below, standing in for the paper's untrusted C application code). The
// cryptographic benchmarks run their built-in test suites against Go's
// standard library as ground truth; the games run scripted sessions checked
// against Go reference implementations of the same logic.
package bench

import (
	"embed"
	"fmt"
	"strings"

	"sgxelide/internal/sdk"
)

//go:embed *.go
var ucSources embed.FS

// Program is one ported benchmark.
type Program struct {
	Name     string
	EDL      string // the application EDL (merged after SgxElide's)
	TrustedC string // the trusted component (mini-C)
	UCFile   string // the Go source file implementing the untrusted driver

	// Workload runs the benchmark's built-in test suite through the public
	// ecalls, verifying every result, and returns an error on any mismatch.
	// It is the measured region of Figures 3 and 4.
	Workload func(h *sdk.Host, e *sdk.Enclave) error

	// IsGame marks the interactive benchmarks whose overall overhead the
	// paper does not measure (they "run forever"); they still appear in
	// Tables 1 and 2.
	IsGame bool
}

// countLines counts non-empty source lines (the LoC metric for Table 1).
func countLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TrustedLOC is the benchmark's trusted-component line count.
func (p *Program) TrustedLOC() int {
	return countLines(p.TrustedC) + countLines(p.EDL)
}

// UntrustedLOC counts the Go driver file.
func (p *Program) UntrustedLOC() int {
	b, err := ucSources.ReadFile(p.UCFile)
	if err != nil {
		return 0
	}
	return countLines(string(b))
}

// All lists the seven benchmarks in the paper's Table 1 order.
func All() []*Program {
	return []*Program{AES, DES, Sha1, Shas, Game2048, Biniax, Crackme}
}

// ByName returns the named benchmark.
func ByName(name string) (*Program, error) {
	for _, p := range All() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}
