package bench

import (
	"bytes"
	"crypto/des"
	"fmt"
	"strings"

	"sgxelide/internal/sdk"
)

// The DES benchmark ports a classic table-driven DES (benchmark [2] in the
// paper): key schedule, the Feistel rounds, and ECB processing inside the
// enclave, verified block-for-block against crypto/des.

// The standard FIPS 46-3 tables (1-based bit indices, MSB first).
var (
	desIP = []byte{
		58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
		62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
		57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
		61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
	}
	desFP = []byte{
		40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
		38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
		36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
		34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
	}
	desE = []byte{
		32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
		8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
		16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
		24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
	}
	desP = []byte{
		16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
		2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
	}
	desPC1 = []byte{
		57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
		10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
		63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
		14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
	}
	desPC2 = []byte{
		14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
		23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
		41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
		44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
	}
	desShifts = []byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}
	desSboxes = []byte{
		// S1
		14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
		0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
		4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
		15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
		// S2
		15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
		3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
		0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
		13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
		// S3
		10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
		13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
		13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
		1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
		// S4
		7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
		13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
		10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
		3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
		// S5
		2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
		14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
		4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
		11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
		// S6
		12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
		10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
		9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
		4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
		// S7
		4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
		13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
		1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
		6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
		// S8
		13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
		1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
		7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
		2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
	}
)

const desEDL = `
enclave {
    trusted {
        public void ecall_des_set_key([in, size=8] uint8_t* key);
        public void ecall_des_process([in, out, size=len] uint8_t* buf, uint64_t len, uint64_t decrypt);
    };
    untrusted {
    };
};
`

func desTrustedC() string {
	var sb strings.Builder
	sb.WriteString("/* DES port: FIPS 46-3 table-driven implementation */\n")
	sb.WriteString(cByteTable("des_ip", desIP))
	sb.WriteString(cByteTable("des_fp", desFP))
	sb.WriteString(cByteTable("des_e", desE))
	sb.WriteString(cByteTable("des_p", desP))
	sb.WriteString(cByteTable("des_pc1", desPC1))
	sb.WriteString(cByteTable("des_pc2", desPC2))
	sb.WriteString(cByteTable("des_shifts", desShifts))
	sb.WriteString(cByteTable("des_sbox", desSboxes))
	sb.WriteString(`
uint64_t des_subkeys[16];

uint64_t des_permute(uint64_t in, const uint8_t* table, int n, int width) {
    uint64_t out = 0;
    for (int i = 0; i < n; i++) {
        uint64_t bit = (in >> (width - (int)table[i])) & 1;
        out = (out << 1) | bit;
    }
    return out;
}

void des_key_schedule(uint64_t key) {
    uint64_t pc1 = des_permute(key, des_pc1, 56, 64);
    uint32_t c = (uint32_t)(pc1 >> 28) & 0x0FFFFFFFu;
    uint32_t d = (uint32_t)pc1 & 0x0FFFFFFFu;
    for (int i = 0; i < 16; i++) {
        int s = des_shifts[i];
        c = ((c << s) | (c >> (28 - s))) & 0x0FFFFFFFu;
        d = ((d << s) | (d >> (28 - s))) & 0x0FFFFFFFu;
        uint64_t cd = ((uint64_t)c << 28) | (uint64_t)d;
        des_subkeys[i] = des_permute(cd, des_pc2, 48, 56);
    }
}

uint32_t des_f(uint32_t r, uint64_t k) {
    uint64_t e = des_permute((uint64_t)r, des_e, 48, 32) ^ k;
    uint32_t out = 0;
    for (int i = 0; i < 8; i++) {
        uint64_t six = (e >> (42 - 6 * i)) & 63;
        uint64_t row = ((six >> 4) & 2) | (six & 1);
        uint64_t col = (six >> 1) & 15;
        out = (out << 4) | (uint32_t)des_sbox[i * 64 + (int)(row * 16 + col)];
    }
    return (uint32_t)des_permute((uint64_t)out, des_p, 32, 32);
}

uint64_t des_crypt_block(uint64_t block, uint64_t decrypt) {
    uint64_t ip = des_permute(block, des_ip, 64, 64);
    uint32_t l = (uint32_t)(ip >> 32);
    uint32_t r = (uint32_t)ip;
    for (int i = 0; i < 16; i++) {
        int ki = i;
        if (decrypt) ki = 15 - i;
        uint32_t nl = r;
        r = l ^ des_f(r, des_subkeys[ki]);
        l = nl;
    }
    uint64_t pre = ((uint64_t)r << 32) | (uint64_t)l;
    return des_permute(pre, des_fp, 64, 64);
}

void ecall_des_set_key(uint8_t* key) {
    uint64_t k = 0;
    for (int i = 0; i < 8; i++) k = (k << 8) | (uint64_t)key[i];
    des_key_schedule(k);
}

void ecall_des_process(uint8_t* buf, uint64_t len, uint64_t decrypt) {
    for (uint64_t off = 0; off + 8 <= len; off += 8) {
        uint64_t b = 0;
        for (int i = 0; i < 8; i++) b = (b << 8) | (uint64_t)buf[off + i];
        b = des_crypt_block(b, decrypt);
        for (int i = 0; i < 8; i++) buf[off + i] = (uint8_t)(b >> ((7 - i) * 8));
    }
}
`)
	return sb.String()
}

// DES is the DES benchmark.
var DES = &Program{
	Name:     "DES",
	EDL:      desEDL,
	TrustedC: desTrustedC(),
	UCFile:   "des.go",
	Workload: desWorkload,
}

// desWorkload cross-checks multi-block ECB encrypt/decrypt against
// crypto/des for several keys.
func desWorkload(h *sdk.Host, e *sdk.Enclave) error {
	plain := make([]byte, 64*8)
	for i := range plain {
		plain[i] = byte(i*11 + 1)
	}
	for _, key := range [][]byte{
		[]byte("8bytekey"),
		{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1},
		{0, 0, 0, 0, 0, 0, 0, 0},
	} {
		block, err := des.NewCipher(key)
		if err != nil {
			return err
		}
		want := make([]byte, len(plain))
		for off := 0; off < len(plain); off += 8 {
			block.Encrypt(want[off:], plain[off:])
		}
		kb := h.AllocBytes(key)
		if _, err := e.ECall("ecall_des_set_key", kb); err != nil {
			return err
		}
		buf := h.AllocBytes(plain)
		if _, err := e.ECall("ecall_des_process", buf, uint64(len(plain)), 0); err != nil {
			return err
		}
		if got := h.ReadBytes(buf, len(plain)); !bytes.Equal(got, want) {
			return fmt.Errorf("des: ciphertext mismatch for key %x", key)
		}
		if _, err := e.ECall("ecall_des_process", buf, uint64(len(plain)), 1); err != nil {
			return err
		}
		if got := h.ReadBytes(buf, len(plain)); !bytes.Equal(got, plain) {
			return fmt.Errorf("des: decrypt mismatch for key %x", key)
		}
	}
	return nil
}
