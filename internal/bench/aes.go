package bench

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"strings"

	"sgxelide/internal/sdk"
)

// The AES benchmark ports tiny-AES128 (benchmark [1] in the paper): AES-128
// key expansion, ECB, and CBC inside the enclave. The paper protects the 4
// encryption/decryption functions; here the whole trusted component is
// sanitized by the whitelist design. The built-in test suite encrypts and
// decrypts buffers and is verified against Go's crypto/aes.

// aesSbox computes the AES S-box (so the C source's tables are generated,
// not hand-typed).
func aesSbox() (sbox, rsbox [256]byte) {
	// Multiplicative inverse in GF(2^8) via exponentiation chains would be
	// overkill; brute force the inverse table once.
	mul := func(a, b byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1b
			}
			b >>= 1
		}
		return p
	}
	inv := [256]byte{}
	for x := 1; x < 256; x++ {
		for y := 1; y < 256; y++ {
			if mul(byte(x), byte(y)) == 1 {
				inv[x] = byte(y)
				break
			}
		}
	}
	for x := 0; x < 256; x++ {
		b := inv[x]
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[x] = s
		rsbox[s] = byte(x)
	}
	return
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// cByteTable renders a byte table as a C initializer.
func cByteTable(name string, data []byte) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "const uint8_t %s[%d] = {\n", name, len(data))
	for i, b := range data {
		if i%16 == 0 {
			sb.WriteString("    ")
		}
		fmt.Fprintf(&sb, "0x%02x", b)
		if i != len(data)-1 {
			sb.WriteString(",")
		}
		if i%16 == 15 {
			sb.WriteString("\n")
		} else if i != len(data)-1 {
			sb.WriteString(" ")
		}
	}
	sb.WriteString("};\n")
	return sb.String()
}

const aesEDL = `
enclave {
    trusted {
        public void ecall_aes_set_key([in, size=16] uint8_t* key);
        public void ecall_aes_ecb_encrypt([in, out, size=len] uint8_t* buf, uint64_t len);
        public void ecall_aes_ecb_decrypt([in, out, size=len] uint8_t* buf, uint64_t len);
        public void ecall_aes_cbc_encrypt([in, out, size=len] uint8_t* buf, uint64_t len, [in, size=16] uint8_t* iv);
        public void ecall_aes_cbc_decrypt([in, out, size=len] uint8_t* buf, uint64_t len, [in, size=16] uint8_t* iv);
    };
    untrusted {
    };
};
`

// aesTrustedC builds the trusted component source with generated tables.
func aesTrustedC() string {
	sbox, rsbox := aesSbox()
	rcon := []byte{0x8d, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}
	var sb strings.Builder
	sb.WriteString("/* tiny-AES128 port: AES-128 ECB/CBC inside the enclave */\n")
	sb.WriteString(cByteTable("aes_sbox", sbox[:]))
	sb.WriteString(cByteTable("aes_rsbox", rsbox[:]))
	sb.WriteString(cByteTable("aes_rcon", rcon))
	sb.WriteString(`
uint8_t aes_round_key[176];

void aes_key_expansion(uint8_t* key) {
    int i;
    for (i = 0; i < 16; i++) aes_round_key[i] = key[i];
    for (i = 4; i < 44; i++) {
        uint8_t t0 = aes_round_key[(i - 1) * 4];
        uint8_t t1 = aes_round_key[(i - 1) * 4 + 1];
        uint8_t t2 = aes_round_key[(i - 1) * 4 + 2];
        uint8_t t3 = aes_round_key[(i - 1) * 4 + 3];
        if (i % 4 == 0) {
            uint8_t tmp = t0;
            t0 = (uint8_t)(aes_sbox[t1] ^ aes_rcon[i / 4]);
            t1 = aes_sbox[t2];
            t2 = aes_sbox[t3];
            t3 = aes_sbox[tmp];
        }
        aes_round_key[i * 4]     = (uint8_t)(aes_round_key[(i - 4) * 4] ^ t0);
        aes_round_key[i * 4 + 1] = (uint8_t)(aes_round_key[(i - 4) * 4 + 1] ^ t1);
        aes_round_key[i * 4 + 2] = (uint8_t)(aes_round_key[(i - 4) * 4 + 2] ^ t2);
        aes_round_key[i * 4 + 3] = (uint8_t)(aes_round_key[(i - 4) * 4 + 3] ^ t3);
    }
}

void aes_add_round_key(uint8_t* s, int round) {
    for (int i = 0; i < 16; i++)
        s[i] ^= aes_round_key[round * 16 + i];
}

uint8_t aes_xtime(uint8_t x) {
    return (uint8_t)((x << 1) ^ ((x >> 7) * 27));
}

uint8_t aes_gmul(uint8_t x, uint8_t y) {
    uint8_t p = 0;
    for (int i = 0; i < 8; i++) {
        if (y & 1) p ^= x;
        x = aes_xtime(x);
        y >>= 1;
    }
    return p;
}

void aes_sub_bytes(uint8_t* s) {
    for (int i = 0; i < 16; i++) s[i] = aes_sbox[s[i]];
}

void aes_inv_sub_bytes(uint8_t* s) {
    for (int i = 0; i < 16; i++) s[i] = aes_rsbox[s[i]];
}

/* State layout follows FIPS-197: s[r + 4*c]. ShiftRows rotates row r left
 * by r positions. */
void aes_shift_rows(uint8_t* s) {
    uint8_t t;
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t;
    t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[3]; s[3] = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = t;
}

void aes_inv_shift_rows(uint8_t* s) {
    uint8_t t;
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    t = s[2]; s[2] = s[10]; s[10] = t;
    t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = s[3]; s[3] = t;
}

void aes_mix_columns(uint8_t* s) {
    for (int c = 0; c < 4; c++) {
        uint8_t a0 = s[4 * c];
        uint8_t a1 = s[4 * c + 1];
        uint8_t a2 = s[4 * c + 2];
        uint8_t a3 = s[4 * c + 3];
        uint8_t all = (uint8_t)(a0 ^ a1 ^ a2 ^ a3);
        s[4 * c]     = (uint8_t)(a0 ^ all ^ aes_xtime((uint8_t)(a0 ^ a1)));
        s[4 * c + 1] = (uint8_t)(a1 ^ all ^ aes_xtime((uint8_t)(a1 ^ a2)));
        s[4 * c + 2] = (uint8_t)(a2 ^ all ^ aes_xtime((uint8_t)(a2 ^ a3)));
        s[4 * c + 3] = (uint8_t)(a3 ^ all ^ aes_xtime((uint8_t)(a3 ^ a0)));
    }
}

void aes_inv_mix_columns(uint8_t* s) {
    for (int c = 0; c < 4; c++) {
        uint8_t a0 = s[4 * c];
        uint8_t a1 = s[4 * c + 1];
        uint8_t a2 = s[4 * c + 2];
        uint8_t a3 = s[4 * c + 3];
        s[4 * c]     = (uint8_t)(aes_gmul(a0, 14) ^ aes_gmul(a1, 11) ^ aes_gmul(a2, 13) ^ aes_gmul(a3, 9));
        s[4 * c + 1] = (uint8_t)(aes_gmul(a0, 9) ^ aes_gmul(a1, 14) ^ aes_gmul(a2, 11) ^ aes_gmul(a3, 13));
        s[4 * c + 2] = (uint8_t)(aes_gmul(a0, 13) ^ aes_gmul(a1, 9) ^ aes_gmul(a2, 14) ^ aes_gmul(a3, 11));
        s[4 * c + 3] = (uint8_t)(aes_gmul(a0, 11) ^ aes_gmul(a1, 13) ^ aes_gmul(a2, 9) ^ aes_gmul(a3, 14));
    }
}

void aes_cipher(uint8_t* s) {
    aes_add_round_key(s, 0);
    for (int round = 1; round < 10; round++) {
        aes_sub_bytes(s);
        aes_shift_rows(s);
        aes_mix_columns(s);
        aes_add_round_key(s, round);
    }
    aes_sub_bytes(s);
    aes_shift_rows(s);
    aes_add_round_key(s, 10);
}

void aes_inv_cipher(uint8_t* s) {
    aes_add_round_key(s, 10);
    for (int round = 9; round > 0; round--) {
        aes_inv_shift_rows(s);
        aes_inv_sub_bytes(s);
        aes_add_round_key(s, round);
        aes_inv_mix_columns(s);
    }
    aes_inv_shift_rows(s);
    aes_inv_sub_bytes(s);
    aes_add_round_key(s, 0);
}

void ecall_aes_set_key(uint8_t* key) {
    aes_key_expansion(key);
}

void ecall_aes_ecb_encrypt(uint8_t* buf, uint64_t len) {
    for (uint64_t off = 0; off + 16 <= len; off += 16)
        aes_cipher(buf + off);
}

void ecall_aes_ecb_decrypt(uint8_t* buf, uint64_t len) {
    for (uint64_t off = 0; off + 16 <= len; off += 16)
        aes_inv_cipher(buf + off);
}

void ecall_aes_cbc_encrypt(uint8_t* buf, uint64_t len, uint8_t* iv) {
    uint8_t chain[16];
    for (int i = 0; i < 16; i++) chain[i] = iv[i];
    for (uint64_t off = 0; off + 16 <= len; off += 16) {
        for (int i = 0; i < 16; i++) buf[off + i] ^= chain[i];
        aes_cipher(buf + off);
        for (int i = 0; i < 16; i++) chain[i] = buf[off + i];
    }
}

void ecall_aes_cbc_decrypt(uint8_t* buf, uint64_t len, uint8_t* iv) {
    uint8_t chain[16];
    uint8_t ct[16];
    for (int i = 0; i < 16; i++) chain[i] = iv[i];
    for (uint64_t off = 0; off + 16 <= len; off += 16) {
        for (int i = 0; i < 16; i++) ct[i] = buf[off + i];
        aes_inv_cipher(buf + off);
        for (int i = 0; i < 16; i++) {
            buf[off + i] ^= chain[i];
            chain[i] = ct[i];
        }
    }
}
`)
	return sb.String()
}

// AES is the tiny-AES128 benchmark.
var AES = &Program{
	Name:     "AES",
	EDL:      aesEDL,
	TrustedC: aesTrustedC(),
	UCFile:   "aes.go",
	Workload: aesWorkload,
}

// aesWorkload is the built-in test suite: known-answer tests for ECB and
// CBC against crypto/aes over multi-block buffers.
func aesWorkload(h *sdk.Host, e *sdk.Enclave) error {
	key := []byte("0123456789abcdef")
	plain := make([]byte, 64*16)
	for i := range plain {
		plain[i] = byte(i*7 + 3)
	}
	iv := []byte("iviviviviviviviv")

	keyBuf := h.AllocBytes(key)
	if _, err := e.ECall("ecall_aes_set_key", keyBuf); err != nil {
		return err
	}

	// ECB round trip with reference check.
	block, err := aes.NewCipher(key)
	if err != nil {
		return err
	}
	wantECB := make([]byte, len(plain))
	for off := 0; off < len(plain); off += 16 {
		block.Encrypt(wantECB[off:], plain[off:])
	}
	buf := h.AllocBytes(plain)
	if _, err := e.ECall("ecall_aes_ecb_encrypt", buf, uint64(len(plain))); err != nil {
		return err
	}
	if got := h.ReadBytes(buf, len(plain)); !bytes.Equal(got, wantECB) {
		return fmt.Errorf("aes: ECB ciphertext mismatch")
	}
	if _, err := e.ECall("ecall_aes_ecb_decrypt", buf, uint64(len(plain))); err != nil {
		return err
	}
	if got := h.ReadBytes(buf, len(plain)); !bytes.Equal(got, plain) {
		return fmt.Errorf("aes: ECB decrypt mismatch")
	}

	// CBC against crypto/cipher.
	wantCBC := make([]byte, len(plain))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(wantCBC, plain)
	ivBuf := h.AllocBytes(iv)
	buf2 := h.AllocBytes(plain)
	if _, err := e.ECall("ecall_aes_cbc_encrypt", buf2, uint64(len(plain)), ivBuf); err != nil {
		return err
	}
	if got := h.ReadBytes(buf2, len(plain)); !bytes.Equal(got, wantCBC) {
		return fmt.Errorf("aes: CBC ciphertext mismatch")
	}
	if _, err := e.ECall("ecall_aes_cbc_decrypt", buf2, uint64(len(plain)), ivBuf); err != nil {
		return err
	}
	if got := h.ReadBytes(buf2, len(plain)); !bytes.Equal(got, plain) {
		return fmt.Errorf("aes: CBC decrypt mismatch")
	}
	return nil
}
