package bench

import (
	"bytes"
	"crypto/sha1"
	"fmt"

	"sgxelide/internal/sdk"
)

// The Sha1 benchmark ports RFC 3174 (benchmark [3] in the paper): a full
// SHA-1 with padding inside the enclave, verified against crypto/sha1.

const sha1EDL = `
enclave {
    trusted {
        public void ecall_sha1([in, size=len] uint8_t* data, uint64_t len, [out, size=20] uint8_t* digest);
    };
    untrusted {
    };
};
`

const sha1TrustedC = `
/* RFC 3174 SHA-1 port */

uint32_t sha1_rotl(uint32_t x, int n) {
    return (x << n) | (x >> (32 - n));
}

uint32_t sha1_h[5];

void sha1_block(uint8_t* p) {
    uint32_t w[80];
    for (int i = 0; i < 16; i++) {
        w[i] = ((uint32_t)p[i * 4] << 24) | ((uint32_t)p[i * 4 + 1] << 16)
             | ((uint32_t)p[i * 4 + 2] << 8) | (uint32_t)p[i * 4 + 3];
    }
    for (int i = 16; i < 80; i++)
        w[i] = sha1_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    uint32_t a = sha1_h[0];
    uint32_t b = sha1_h[1];
    uint32_t c = sha1_h[2];
    uint32_t d = sha1_h[3];
    uint32_t e = sha1_h[4];

    for (int i = 0; i < 80; i++) {
        uint32_t f;
        uint32_t k;
        if (i < 20) {
            f = (b & c) | ((~b) & d);
            k = 0x5A827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        uint32_t tmp = sha1_rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = sha1_rotl(b, 30);
        b = a;
        a = tmp;
    }
    sha1_h[0] += a;
    sha1_h[1] += b;
    sha1_h[2] += c;
    sha1_h[3] += d;
    sha1_h[4] += e;
}

void ecall_sha1(uint8_t* data, uint64_t len, uint8_t* digest) {
    uint8_t tail[128];
    sha1_h[0] = 0x67452301u;
    sha1_h[1] = 0xEFCDAB89u;
    sha1_h[2] = 0x98BADCFEu;
    sha1_h[3] = 0x10325476u;
    sha1_h[4] = 0xC3D2E1F0u;

    uint64_t off = 0;
    while (off + 64 <= len) {
        sha1_block(data + off);
        off += 64;
    }
    uint64_t rest = len - off;
    for (uint64_t i = 0; i < rest; i++) tail[i] = data[off + i];
    tail[rest] = 0x80;
    uint64_t padded = 64;
    if (rest + 9 > 64) padded = 128;
    for (uint64_t i = rest + 1; i < padded - 8; i++) tail[i] = 0;
    uint64_t bits = len * 8;
    for (int i = 0; i < 8; i++)
        tail[padded - 1 - i] = (uint8_t)(bits >> (i * 8));
    sha1_block(tail);
    if (padded == 128) sha1_block(tail + 64);

    for (int i = 0; i < 5; i++) {
        digest[i * 4]     = (uint8_t)(sha1_h[i] >> 24);
        digest[i * 4 + 1] = (uint8_t)(sha1_h[i] >> 16);
        digest[i * 4 + 2] = (uint8_t)(sha1_h[i] >> 8);
        digest[i * 4 + 3] = (uint8_t)sha1_h[i];
    }
}
`

// Sha1 is the RFC 3174 benchmark.
var Sha1 = &Program{
	Name:     "Sha1",
	EDL:      sha1EDL,
	TrustedC: sha1TrustedC,
	UCFile:   "sha1.go",
	Workload: sha1Workload,
}

// sha1Workload hashes messages of many lengths (covering both padding
// branches) and compares with crypto/sha1.
func sha1Workload(h *sdk.Host, e *sdk.Enclave) error {
	msg := make([]byte, 24<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	out := h.Alloc(20)
	for _, n := range []int{0, 1, 3, 55, 56, 63, 64, 65, 119, 120, 128, 333, 1024, 8 << 10, 24 << 10} {
		in := h.AllocBytes(msg[:n])
		if n == 0 {
			in = h.AllocBytes([]byte{0}) // valid address for an empty message
		}
		if _, err := e.ECall("ecall_sha1", in, uint64(n), out); err != nil {
			return err
		}
		want := sha1.Sum(msg[:n])
		if got := h.ReadBytes(out, 20); !bytes.Equal(got, want[:]) {
			return fmt.Errorf("sha1(%d bytes): got %x, want %x", n, got, want)
		}
	}
	return nil
}
