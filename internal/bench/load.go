package bench

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// LoadBenchConfig drives the open-loop load benchmark: Restores protocol
// runs arrive at a fixed Rate against one TCP authentication server,
// regardless of how fast earlier runs complete. Open-loop arrival is the
// point — a closed loop (start the next restore when the last returns)
// self-throttles exactly when the server slows down, hiding the latency
// the paper's users would actually see.
//
// Each arrival is a full protocol run over its own TCP connection —
// attest with a platform-signed quote, derive the channel key, fetch
// metadata and data — but driven by a Go protocol client rather than an
// enclave ecall, so one process can offer tens of thousands of restores.
// The enclave is loaded once, for quote generation.
type LoadBenchConfig struct {
	Program     string        // benchmark name (see All); default "Sha1"
	Rate        float64       // arrivals per second; default 500
	Restores    int           // total arrivals per protocol run; default 10000
	MaxSessions int           // server concurrent-session cap; default 1024
	Timeout     time.Duration // per-restore deadline; default 30s
	SkipLegacy  bool          // measure only the pipelined protocol
}

// LoadRunResult is one protocol variant's slice of the load benchmark.
type LoadRunResult struct {
	Protocol  string  `json:"protocol"` // "pipelined" or "legacy"
	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Errors    int     `json:"errors"`
	WallMs    float64 `json:"wall_ms"`

	// AchievedRPS is completions over the whole run wall time; under an
	// overloaded server it falls below the offered rate.
	AchievedRPS float64 `json:"achieved_rps"`

	// FlightsPerRestore is the mean network round trips one restore took
	// (client.flights / completed): the pipelined protocol's headline
	// number is 1, the legacy protocol's is 3 (attest, meta, data).
	FlightsPerRestore float64 `json:"flights_per_restore"`

	Latency LoadLatency `json:"latency"`

	// ThroughputRPS is the completion rate per one-second bucket across
	// the run — the throughput curve.
	ThroughputRPS []float64 `json:"throughput_rps"`

	Overloaded     uint64            `json:"overloaded"` // runs shed by server backpressure
	ClientCounters map[string]uint64 `json:"client_counters"`
	ServerCounters map[string]uint64 `json:"server_counters"`

	// PhaseLatency attributes latency per protocol phase per hop
	// ("client" and "server"), from the span records both sides' tracers
	// retained. At high restore counts this is a recent-window sample:
	// each hop's ring holds the last obs.DefaultSpanRing completed spans.
	PhaseLatency map[string]map[string]LatencySummary `json:"phase_latency,omitempty"`
}

// LoadLatency is the end-to-end restore latency distribution, in
// microseconds, measured from arrival (not dial: queueing delay inside
// the client counts, as it would for a user).
type LoadLatency struct {
	LatencySummary
	P999Us float64 `json:"p999_us"`
}

// LoadBenchResult is the JSON document elide-bench writes to
// BENCH_load.json.
type LoadBenchResult struct {
	Program     string  `json:"program"`
	RateRPS     float64 `json:"offered_rate_rps"`
	Restores    int     `json:"restores"`
	MaxSessions int     `json:"max_sessions"`

	Pipelined *LoadRunResult `json:"pipelined"`
	Legacy    *LoadRunResult `json:"legacy,omitempty"`

	// P50SpeedupX is legacy p50 latency over pipelined p50 latency —
	// the round-trip collapse measured, not asserted.
	P50SpeedupX float64 `json:"p50_speedup_x,omitempty"`
}

func (r *LoadBenchResult) String() string {
	line := func(run *LoadRunResult) string {
		return fmt.Sprintf(
			"  %-9s %d/%d ok (%d err, %d shed) in %.0f ms: %.0f rps, %.2f flights/restore, p50 %.0fµs p99 %.0fµs",
			run.Protocol, run.Completed, run.Offered, run.Errors, run.Overloaded, run.WallMs,
			run.AchievedRPS, run.FlightsPerRestore, run.Latency.P50Us, run.Latency.P99Us)
	}
	s := fmt.Sprintf("load bench: %s, %d restores offered at %.0f rps (cap %d)\n%s",
		r.Program, r.Restores, r.RateRPS, r.MaxSessions, line(r.Pipelined))
	if r.Legacy != nil {
		s += "\n" + line(r.Legacy)
		s += fmt.Sprintf("\n  pipelined p50 speedup: %.2fx", r.P50SpeedupX)
	}
	return s
}

// LoadBench builds one protected program, serves it over TCP, and offers
// cfg.Restores protocol runs at cfg.Rate arrivals/second — once with the
// pipelined (ProtoV1) protocol and, unless SkipLegacy, once with the
// legacy sequential protocol against the same server, so the two runs
// compare round-trip counts and latency under identical load.
func LoadBench(env *Env, cfg LoadBenchConfig) (*LoadBenchResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 500
	}
	if cfg.Restores <= 0 {
		cfg.Restores = 10000
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
	if err != nil {
		return nil, err
	}

	// One enclave load supplies quotes for every simulated machine: the
	// quote binds the per-run ECDH key through report data, so each run
	// still produces its own fresh quote, but over the same measurement.
	quoter, err := newQuoteFactory(env, prot)
	if err != nil {
		return nil, err
	}

	res := &LoadBenchResult{
		Program:     p.Name,
		RateRPS:     cfg.Rate,
		Restores:    cfg.Restores,
		MaxSessions: cfg.MaxSessions,
	}
	res.Pipelined, err = loadRun(env, prot, quoter, cfg, elide.ProtoV1)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipLegacy {
		res.Legacy, err = loadRun(env, prot, quoter, cfg, elide.ProtoLegacy)
		if err != nil {
			return nil, err
		}
		if res.Pipelined.Latency.P50Us > 0 {
			res.P50SpeedupX = res.Legacy.Latency.P50Us / res.Pipelined.Latency.P50Us
		}
	}
	return res, nil
}

// quoteFactory mints platform-signed quotes binding caller-supplied ECDH
// public keys to the protected program's measurement.
type quoteFactory struct {
	host *sdk.Host
	encl *sdk.Enclave
}

func newQuoteFactory(env *Env, prot *elide.Protected) (*quoteFactory, error) {
	// The enclave is loaded only for report generation; its runtime client
	// never speaks (the load clients below drive the protocol directly).
	srv, err := prot.NewServerFor(env.CA)
	if err != nil {
		return nil, err
	}
	encl, _, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	if err != nil {
		return nil, err
	}
	return &quoteFactory{host: env.Host, encl: encl}, nil
}

// quoteFor produces a fresh quote whose report data binds pub.
func (q *quoteFactory) quoteFor(pub []byte) (*sgx.Quote, error) {
	var rdata [sgx.ReportDataSize]byte
	binding := sha256.Sum256(pub)
	copy(rdata[:], binding[:])
	report, err := q.host.Platform.EReport(q.encl.Encl, sgx.QETargetInfo(), rdata)
	if err != nil {
		return nil, err
	}
	return q.host.Platform.QuoteReport(report)
}

// loadRun offers cfg.Restores arrivals at cfg.Rate against a fresh server
// with the given protocol version and collects one LoadRunResult.
func loadRun(env *Env, prot *elide.Protected, quoter *quoteFactory, cfg LoadBenchConfig, proto uint8) (*LoadRunResult, error) {
	serverMetrics := obs.NewRegistry()
	clientMetrics := obs.NewRegistry()
	clientTracer := obs.NewTracer(0)
	clientTracer.SetService("client")
	serverTracer := obs.NewTracer(0)
	serverTracer.SetService("server")
	srv, err := prot.NewServerFor(env.CA,
		elide.WithMaxSessions(cfg.MaxSessions),
		elide.WithServerMetrics(serverMetrics),
		elide.WithServerTracer(serverTracer),
	)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	name := "legacy"
	if proto >= elide.ProtoV1 {
		name = "pipelined"
	}
	run := &LoadRunResult{Protocol: name, Offered: cfg.Restores}
	wantMeta := prot.Meta.Marshal()

	latency := obs.NewHistogram()
	injectWall := time.Duration(float64(cfg.Restores)/cfg.Rate*float64(time.Second)) + cfg.Timeout
	start := time.Now()
	completions := obs.NewSeries(start, int(injectWall/time.Second)+1, time.Second)

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		completed  int
		failures   int
		overloaded int
		firstErr   error
	)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	for i := 0; i < cfg.Restores; i++ {
		// Open loop: arrival i fires at start + i*interval whether or not
		// earlier arrivals have finished.
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived := time.Now()
			err := oneProtocolRestore(env, quoter, l.Addr().String(), clientMetrics, clientTracer, cfg.Timeout, proto, wantMeta)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				completed++
				latency.Observe(time.Since(arrived))
				completions.Observe()
				return
			}
			failures++
			if errors.Is(err, elide.ErrOverloaded) {
				overloaded++
			} else if firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	cancel()
	if err := <-served; err != nil && !errors.Is(err, elide.ErrServerClosed) {
		return nil, err
	}
	if completed == 0 {
		return nil, fmt.Errorf("bench: no %s restore completed: %v", name, firstErr)
	}
	// Failures under overload are the benchmark's subject, not a harness
	// error; anything else (first occurrence) is.
	if firstErr != nil {
		return nil, fmt.Errorf("bench: %s load run: %w", name, firstErr)
	}

	run.Completed = completed
	run.Errors = failures
	run.Overloaded = uint64(overloaded)
	run.WallMs = float64(wall.Nanoseconds()) / 1e6
	run.AchievedRPS = float64(completed) / wall.Seconds()
	csnap := clientMetrics.Snapshot()
	ssnap := serverMetrics.Snapshot()
	if flights := csnap.Counters["client.flights"]; completed > 0 {
		run.FlightsPerRestore = float64(flights) / float64(completed)
	}
	hsnap := latency.Snapshot()
	run.Latency = LoadLatency{
		LatencySummary: summarize(hsnap),
		P999Us:         float64(hsnap.Quantile(0.999).Nanoseconds()) / 1e3,
	}
	// Trim trailing empty buckets so the curve ends where the run did.
	rates := completions.Rates()
	for len(rates) > 0 && rates[len(rates)-1] == 0 {
		rates = rates[:len(rates)-1]
	}
	run.ThroughputRPS = rates
	run.ClientCounters = csnap.Counters
	run.ServerCounters = ssnap.Counters
	run.PhaseLatency = phaseLatency(append(clientTracer.Completed(), serverTracer.Completed()...))
	return run, nil
}

// phaseLatency summarizes span durations per name per hop from merged
// trace records. Untagged records count as the client hop.
func phaseLatency(recs []obs.SpanRecord) map[string]map[string]LatencySummary {
	hists := make(map[string]map[string]*obs.Histogram)
	for _, r := range recs {
		svc := r.Svc
		if svc == "" {
			svc = "client"
		}
		m := hists[svc]
		if m == nil {
			m = make(map[string]*obs.Histogram)
			hists[svc] = m
		}
		h := m[r.Name]
		if h == nil {
			h = obs.NewHistogram()
			m[r.Name] = h
		}
		h.Observe(r.Duration())
	}
	out := make(map[string]map[string]LatencySummary, len(hists))
	for svc, m := range hists {
		sm := make(map[string]LatencySummary, len(m))
		for name, h := range m {
			sm[name] = summarize(h.Snapshot())
		}
		out[svc] = sm
	}
	return out
}

// oneProtocolRestore is one simulated user machine's restore: fresh ECDH
// keypair, fresh quote, own TCP connection, full protocol, results
// verified against the deployment's real metadata.
func oneProtocolRestore(env *Env, quoter *quoteFactory, addr string, metrics *obs.Registry, tracer *obs.Tracer, timeout time.Duration, proto uint8, wantMeta []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	// One root span per simulated machine: the transport's attest/request
	// spans parent into it, and the v1 handshake carries its trace to the
	// server, so both hops' rings attribute this restore to one trace.
	root := tracer.Start("restore")
	defer root.End()
	ctx = obs.ContextWithSpan(ctx, root)
	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		return err
	}
	quote, err := quoter.quoteFor(pub)
	if err != nil {
		return err
	}
	client := elide.NewTCPClient(addr,
		elide.WithProtocolVersion(proto),
		elide.WithClientMetrics(metrics),
		elide.WithDialTimeout(timeout),
		elide.WithRequestTimeout(timeout),
		elide.WithRetryBudget(1), // open loop: a failed arrival is a data point, not a retry loop
	)
	defer func() { _ = client.Close() }()
	spub, err := client.Attest(ctx, quote, pub)
	if err != nil {
		return err
	}
	key, err := sdk.DeriveChannelKey(priv, spub)
	if err != nil {
		return err
	}
	request := func(req byte) ([]byte, error) {
		enc, err := elide.ChannelSeal(key, []byte{req})
		if err != nil {
			return nil, err
		}
		resp, err := client.Request(ctx, enc)
		if err != nil {
			return nil, err
		}
		return elide.ChannelOpen(key, resp)
	}
	meta, err := request(elide.RequestMeta)
	if err != nil {
		return fmt.Errorf("request_meta: %w", err)
	}
	if !bytes.Equal(meta, wantMeta) {
		return fmt.Errorf("request_meta: wrong metadata (%d bytes)", len(meta))
	}
	data, err := request(elide.RequestData)
	if err != nil {
		return fmt.Errorf("request_data: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("request_data: empty payload")
	}
	return nil
}
