package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sgxelide/internal/edl"
	"sgxelide/internal/elf"
	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// elideUCGlueLOC is the untrusted code a developer adds to use SgxElide:
// install the runtime, connect a client, and make the one elide_restore
// call (the paper's constant +50 LoC covers the same glue plus its ocall
// C shims, which live in our Go runtime instead).
const elideUCGlueLOC = 6

// elideTCLOC is the trusted code SgxElide links into every enclave
// (the paper's constant +113 LoC).
func elideTCLOC() int {
	return countLines(elide.TrustedC) + countLines(elide.TrustedAsm) + countLines(elide.EDLSource)
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Name               string
	OriginalLOC        int // the ported algorithm (trusted C before enclave glue)
	UCwSGX, TCwSGX     int
	UCwElide, TCwElide int
	TCFunctions        int
	TCBytes            uint64
	SanitizedFunctions int
	SanitizedBytes     uint64
}

// Table1 builds every benchmark with SgxElide and reports the sanitizer
// statistics of Table 1.
func Table1(env *Env) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range All() {
		prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
		if err != nil {
			return nil, err
		}
		f, err := elf.Read(prot.SanitizedELF)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name:               p.Name,
			OriginalLOC:        countLines(p.TrustedC),
			UCwSGX:             p.UntrustedLOC(),
			TCwSGX:             p.TrustedLOC(),
			UCwElide:           p.UntrustedLOC() + elideUCGlueLOC,
			TCwElide:           p.TrustedLOC() + elideTCLOC(),
			TCFunctions:        len(f.FuncSymbols()),
			TCBytes:            prot.Stats.TotalTextBytes,
			SanitizedFunctions: prot.Stats.SanitizedFunctions,
			SanitizedBytes:     prot.Stats.SanitizedBytes,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Stat is a mean ± standard deviation in milliseconds.
type Stat struct {
	MeanMs float64
	StdMs  float64
}

// median returns the median sample in milliseconds (robust against
// scheduler noise on shared machines; used for the Figures).
func median(samples []time.Duration) float64 {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return float64(s[mid].Nanoseconds()) / 1e6
	}
	return float64((s[mid-1] + s[mid]).Nanoseconds()) / 2 / 1e6
}

func newStat(samples []time.Duration) Stat {
	n := float64(len(samples))
	var mean float64
	for _, s := range samples {
		mean += float64(s.Nanoseconds())
	}
	mean /= n
	var varsum float64
	for _, s := range samples {
		d := float64(s.Nanoseconds()) - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / n)
	return Stat{MeanMs: mean / 1e6, StdMs: std / 1e6}
}

// Table2Row is one row of the paper's Table 2: sanitize and restore times
// for remote-data and local-data modes.
type Table2Row struct {
	Name                          string
	RemoteSanitize, RemoteRestore Stat
	LocalSanitize, LocalRestore   Stat
}

// Table2 measures sanitization (offline) and restoration (the first-launch
// runtime cost) for each benchmark, iters times each.
func Table2(env *Env, iters int) ([]Table2Row, error) {
	_, wl, err := Fixtures()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, p := range All() {
		row := Table2Row{Name: p.Name}

		// Build the unsanitized enclave once; the sanitizer is what we time.
		iface, err := elide.MergeEDL(p.EDL)
		if err != nil {
			return nil, err
		}
		sources := append(elide.TrustedSources(), sdk.C(p.Name+".c", p.TrustedC))
		res, err := sdk.BuildEnclave(sdk.BuildConfig{}, iface, sources...)
		if err != nil {
			return nil, err
		}

		for _, local := range []bool{false, true} {
			opts := elide.SanitizeOptions{EncryptLocal: local}
			var sanTimes []time.Duration
			for i := 0; i < iters; i++ {
				start := time.Now()
				if _, err := elide.Sanitize(res.ELF, wl, opts); err != nil {
					return nil, err
				}
				sanTimes = append(sanTimes, time.Since(start))
			}

			prot, err := BuildProtected(env, p, opts)
			if err != nil {
				return nil, err
			}
			srv, err := prot.NewServerFor(env.CA)
			if err != nil {
				return nil, err
			}
			var restTimes []time.Duration
			for i := 0; i < iters; i++ {
				encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
				if err != nil {
					return nil, err
				}
				start := time.Now()
				code, err := encl.ECall("elide_restore", 0)
				took := time.Since(start)
				if err != nil || code != elide.RestoreOKServer {
					encl.Destroy()
					return nil, fmt.Errorf("%s: restore failed: %d %v (%v)", p.Name, code, err, rt.LastErr())
				}
				restTimes = append(restTimes, took)
				encl.Destroy()
			}
			if local {
				row.LocalSanitize = newStat(sanTimes)
				row.LocalRestore = newStat(restTimes)
			} else {
				row.RemoteSanitize = newStat(sanTimes)
				row.RemoteRestore = newStat(restTimes)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FigureRow is one bar pair of Figure 3 / Figure 4: normalized end-to-end
// runtime of the protected benchmark relative to the plain-SGX baseline.
type FigureRow struct {
	Name         string
	BaselineMs   float64
	ProtectedMs  float64
	RelativePerf float64 // protected / baseline (1.00 = no overhead)
}

// Figures measures the overall performance overhead (Figure 3: remote data;
// Figure 4: local data). Following the paper, the games are excluded and
// each measured run is the whole application: enclave creation, restoration
// (protected only), and the built-in test suite.
func Figures(env *Env, local bool, iters int) ([]FigureRow, error) {
	var rows []FigureRow
	for _, p := range All() {
		if p.IsGame {
			continue
		}
		prot, err := BuildProtected(env, p, elide.SanitizeOptions{EncryptLocal: local})
		if err != nil {
			return nil, err
		}
		srv, err := prot.NewServerFor(env.CA)
		if err != nil {
			return nil, err
		}

		// Plain SGX baseline, rebuilt per run like ./app would reload it.
		var baseTimes, protTimes []time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			encl, err := BuildBaselineLoadOnly(env, p)
			if err != nil {
				return nil, err
			}
			if err := p.Workload(env.Host, encl); err != nil {
				encl.Destroy()
				return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
			}
			encl.Destroy()
			baseTimes = append(baseTimes, time.Since(start))
		}
		for i := 0; i < iters; i++ {
			start := time.Now()
			encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
			if err != nil {
				return nil, err
			}
			code, err := encl.ECall("elide_restore", 0)
			if err != nil || code != elide.RestoreOKServer {
				encl.Destroy()
				return nil, fmt.Errorf("%s: restore: %d %v (%v)", p.Name, code, err, rt.LastErr())
			}
			if err := p.Workload(env.Host, encl); err != nil {
				encl.Destroy()
				return nil, fmt.Errorf("%s protected: %w", p.Name, err)
			}
			encl.Destroy()
			protTimes = append(protTimes, time.Since(start))
		}
		base := median(baseTimes)
		protMs := median(protTimes)
		rows = append(rows, FigureRow{
			Name:         p.Name,
			BaselineMs:   base,
			ProtectedMs:  protMs,
			RelativePerf: protMs / base,
		})
	}
	return rows, nil
}

// baselineImages caches built and signed baseline enclaves per program, so
// the timed region of a Figures run is what `time ./app` measures — enclave
// loading plus the workload — not compilation.
var baselineImages = map[string]*baselineImage{}

type baselineImage struct {
	elf   []byte
	ss    *sgx.SigStruct
	iface *edl.Interface
}

// BuildBaselineLoadOnly loads a (cached) baseline enclave image.
func BuildBaselineLoadOnly(env *Env, p *Program) (*sdk.Enclave, error) {
	img, ok := baselineImages[p.Name]
	if !ok {
		key, _, err := Fixtures()
		if err != nil {
			return nil, err
		}
		iface, err := edl.Parse(p.EDL)
		if err != nil {
			return nil, err
		}
		res, err := sdk.BuildEnclave(sdk.BuildConfig{}, iface, sdk.C(p.Name+".c", p.TrustedC))
		if err != nil {
			return nil, err
		}
		mr, err := sdk.MeasureELF(env.Host, res.ELF)
		if err != nil {
			return nil, err
		}
		ss, err := sgx.SignEnclave(key, mr, 1, 1)
		if err != nil {
			return nil, err
		}
		img = &baselineImage{elf: res.ELF, ss: ss, iface: iface}
		baselineImages[p.Name] = img
	}
	return env.Host.CreateEnclave(img.elf, img.ss, img.iface)
}

// --- rendering ---

// RenderTable1 formats Table 1 like the paper.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1. The ported benchmarks (UC = untrusted, TC = trusted component).\n")
	fmt.Fprintf(&sb, "%-10s %9s %8s %8s %10s %10s %6s %9s %10s %10s\n",
		"Benchmark", "Orig LOC", "UC/SGX", "TC/SGX", "UC/Elide", "TC/Elide",
		"TCFns", "TCBytes", "SanitFns", "SanitBytes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %9d %8d %8d %10d %10d %6d %9d %10d %10d\n",
			r.Name, r.OriginalLOC, r.UCwSGX, r.TCwSGX, r.UCwElide, r.TCwElide,
			r.TCFunctions, r.TCBytes, r.SanitizedFunctions, r.SanitizedBytes)
	}
	return sb.String()
}

// RenderTable2 formats Table 2 like the paper.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Sanitization/restoration execution time (ms) with remote/local data.\n")
	fmt.Fprintf(&sb, "%-10s | %9s %7s %9s %7s | %9s %7s %9s %7s\n",
		"", "RemSanit", "Std", "RemRest", "Std", "LocSanit", "Std", "LocRest", "Std")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %9.3f %7.3f %9.3f %7.3f | %9.3f %7.3f %9.3f %7.3f\n",
			r.Name,
			r.RemoteSanitize.MeanMs, r.RemoteSanitize.StdMs,
			r.RemoteRestore.MeanMs, r.RemoteRestore.StdMs,
			r.LocalSanitize.MeanMs, r.LocalSanitize.StdMs,
			r.LocalRestore.MeanMs, r.LocalRestore.StdMs)
	}
	return sb.String()
}

// RenderFigure formats Figure 3/4 data as a table plus normalized bars in
// the style of the paper's figures (both bars scaled to the baseline).
func RenderFigure(title string, rows []FigureRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-10s %12s %13s %10s\n", "Benchmark", "w/ SGX (ms)", "w/ Elide (ms)", "Relative")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.1f %13.1f %9.1f%%\n",
			r.Name, r.BaselineMs, r.ProtectedMs, 100*r.RelativePerf)
	}
	sb.WriteString("\nRelative performance (100% = w/ SGX baseline):\n")
	const width = 40 // bar length of the 100% baseline
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s w/SGX      |%s| 100.0%%\n", r.Name, bar(1.0, width))
		fmt.Fprintf(&sb, "%-10s w/SgxElide |%s| %.1f%%\n", "", bar(r.RelativePerf, width), 100*r.RelativePerf)
	}
	return sb.String()
}

// bar renders a proportional bar capped at 150% of the baseline width.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1.5 {
		frac = 1.5
	}
	n := int(frac*float64(width) + 0.5)
	pad := int(1.5*float64(width)+0.5) - n
	return strings.Repeat("#", n) + strings.Repeat(" ", pad)
}
