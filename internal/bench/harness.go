package bench

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sync"

	"sgxelide/internal/edl"
	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// Env is one simulated machine: CA, SGX platform, untrusted runtime.
type Env struct {
	CA   *sgx.CA
	Host *sdk.Host
}

// NewEnv provisions a platform.
func NewEnv() (*Env, error) {
	ca, err := sgx.NewCA()
	if err != nil {
		return nil, err
	}
	p, err := sgx.NewPlatform(sgx.Config{}, ca)
	if err != nil {
		return nil, err
	}
	return &Env{CA: ca, Host: sdk.NewHost(p)}, nil
}

// Shared slow fixtures: the signing key and the SgxElide whitelist are the
// same for every benchmark (the whitelist by design — paper §4.1).
var (
	fixtureOnce sync.Once
	fixtureKey  *rsa.PrivateKey
	fixtureWL   elide.Whitelist
	fixtureErr  error
)

// Fixtures returns the shared signing key and whitelist.
func Fixtures() (*rsa.PrivateKey, elide.Whitelist, error) {
	fixtureOnce.Do(func() {
		fixtureKey, fixtureErr = rsa.GenerateKey(rand.Reader, 1024)
		if fixtureErr != nil {
			return
		}
		fixtureWL, fixtureErr = elide.GenerateWhitelist()
	})
	return fixtureKey, fixtureWL, fixtureErr
}

// BuildBaseline builds and loads the program as a plain SGX enclave
// (no SgxElide) — the "w/ SGX" baseline of Figures 3 and 4.
func BuildBaseline(env *Env, p *Program) (*sdk.Enclave, error) {
	key, _, err := Fixtures()
	if err != nil {
		return nil, err
	}
	iface, err := edl.Parse(p.EDL)
	if err != nil {
		return nil, err
	}
	res, err := sdk.BuildEnclave(sdk.BuildConfig{}, iface, sdk.C(p.Name+".c", p.TrustedC))
	if err != nil {
		return nil, fmt.Errorf("bench: building %s baseline: %w", p.Name, err)
	}
	mr, err := sdk.MeasureELF(env.Host, res.ELF)
	if err != nil {
		return nil, err
	}
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	if err != nil {
		return nil, err
	}
	return env.Host.CreateEnclave(res.ELF, ss, res.EDL)
}

// BuildProtected builds the program with SgxElide and sanitizes it.
func BuildProtected(env *Env, p *Program, san elide.SanitizeOptions) (*elide.Protected, error) {
	key, wl, err := Fixtures()
	if err != nil {
		return nil, err
	}
	prot, err := elide.BuildProtected(env.Host, elide.BuildProtectedOptions{
		Sanitize:  san,
		AppEDL:    p.EDL,
		Sources:   []sdk.Source{sdk.C(p.Name+".c", p.TrustedC)},
		SignKey:   key,
		Whitelist: wl,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: building protected %s: %w", p.Name, err)
	}
	return prot, nil
}

// LaunchProtected loads the sanitized enclave with an in-process
// authentication server (the paper runs client and server on one machine).
func LaunchProtected(env *Env, prot *elide.Protected) (*sdk.Enclave, *elide.Runtime, error) {
	srv, err := prot.NewServerFor(env.CA)
	if err != nil {
		return nil, nil, err
	}
	return prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
}

// RunProtected is the full user-side flow: launch, restore, run the
// workload. Returns the elide_restore return code.
func RunProtected(env *Env, prot *elide.Protected, p *Program, flags uint64) (uint64, error) {
	encl, rt, err := LaunchProtected(env, prot)
	if err != nil {
		return 0, err
	}
	defer encl.Destroy()
	code, err := encl.ECall("elide_restore", flags)
	if err != nil {
		return 0, fmt.Errorf("restore: %w (runtime: %v)", err, rt.LastErr())
	}
	if code >= 100 {
		return code, fmt.Errorf("elide_restore failed with code %d (runtime: %v)", code, rt.LastErr())
	}
	if err := p.Workload(env.Host, encl); err != nil {
		return code, err
	}
	return code, nil
}
