package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
)

// ChurnConfig drives the gossip-fleet churn run: Restores full restores
// flow through a fleet of Replicas gossip members (every one seeded with
// only replica 0 — bootstrap is the mesh's job) plus one legacy replica
// that speaks no gossip at all, while the controller kills a member at
// ~1/4 of the run, cold-adds a brand-new member at ~1/2 (and proves it
// converges on the fleet's resume records without a single attestation
// flight), and restarts the killed member at ~3/4. The client endpoint
// pool tracks the fleet through the membership query the whole time.
type ChurnConfig struct {
	Program        string        // benchmark program (see All); default "Sha1"
	Replicas       int           // initial gossip members; default 3
	Restores       int           // total restores to drive; default 48
	Workers        int           // concurrent restore workers; default 8
	Sessions       int           // sessions pre-established on replica 0; default 8
	GossipInterval time.Duration // fleet gossip tick; default 25ms
	SuspectTimeout time.Duration // suspicion expiry; default 150ms
	Timeout        time.Duration // per-restore deadline; default 2m
}

// ChurnResult is the JSON document elide-bench -churn writes to
// BENCH_churn.json. A correct run has UntypedFailures == 0,
// AddedExtraAttestFlights == 0 (the cold replica resumed every session
// from anti-entropy state alone), and non-zero suspect/dead/join audit
// counts for the churn the controller inflicted.
type ChurnResult struct {
	Program  string  `json:"program"`
	Replicas int     `json:"replicas"`
	Restores int     `json:"restores"`
	Workers  int     `json:"workers"`
	Sessions int     `json:"sessions"`
	WallMs   float64 `json:"wall_ms"`

	Succeeded        int `json:"succeeded"`
	TypedFailures    int `json:"typed_failures"`
	UntypedFailures  int `json:"untyped_failures"`
	WorkloadFailures int `json:"workload_failures"`

	Kills    int `json:"kills"`
	Restarts int `json:"restarts"`
	Added    int `json:"added"`

	// Client pool size as the fleet view changed: full fleet + legacy,
	// after the kill was gossiped, after the cold member joined.
	PoolBeforeKill int `json:"pool_before_kill"`
	PoolAfterKill  int `json:"pool_after_kill"`
	PoolAfterAdd   int `json:"pool_after_add"`

	// Cold-added member: how long until it held every pre-established
	// session record (anti-entropy), and what it cost to resume them.
	ConvergenceMs           float64 `json:"convergence_ms"`
	ConvergenceRounds       int     `json:"convergence_rounds"`
	AddedResumed            int     `json:"added_resumed"`
	AddedExtraAttestFlights uint64  `json:"added_extra_attest_flights"`

	// The gossip-less replica must keep serving through the static pool
	// entries the whole time.
	LegacyRestores  int `json:"legacy_restores"`
	LegacySucceeded int `json:"legacy_succeeded"`

	MemberJoins    uint64 `json:"member_joins"`
	MemberSuspects uint64 `json:"member_suspects"`
	MemberDeaths   uint64 `json:"member_deaths"`
	AntiEntropy    uint64 `json:"anti_entropy_syncs"`

	RestoreLatency LatencySummary    `json:"restore_latency"`
	Counters       map[string]uint64 `json:"counters"`
}

func (r *ChurnResult) String() string {
	return fmt.Sprintf(
		"churn bench: %s, %d gossip replicas + 1 legacy, %d restores (%d workers): "+
			"%d ok / %d typed / %d untyped failures in %.1f ms\n"+
			"  churn: %d kills, %d restarts, %d added; pool %d → %d → %d\n"+
			"  cold member: converged in %d gossip rounds (%.0f ms), resumed %d/%d sessions "+
			"with %d extra attest flights\n"+
			"  legacy: %d/%d restores ok; audits: %d joins, %d suspects, %d deaths, %d anti-entropy\n"+
			"  restore p50 %.0fµs  p90 %.0fµs  p99 %.0fµs",
		r.Program, r.Replicas, r.Restores, r.Workers,
		r.Succeeded, r.TypedFailures, r.UntypedFailures, r.WallMs,
		r.Kills, r.Restarts, r.Added, r.PoolBeforeKill, r.PoolAfterKill, r.PoolAfterAdd,
		r.ConvergenceRounds, r.ConvergenceMs, r.AddedResumed, r.Sessions,
		r.AddedExtraAttestFlights,
		r.LegacySucceeded, r.LegacyRestores,
		r.MemberJoins, r.MemberSuspects, r.MemberDeaths, r.AntiEntropy,
		r.RestoreLatency.P50Us, r.RestoreLatency.P90Us, r.RestoreLatency.P99Us)
}

// ChurnBench provisions the gossip fleet and drives the run.
func ChurnBench(env *Env, cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Replicas < 2 {
		cfg.Replicas = 3
	}
	if cfg.Restores <= 0 {
		cfg.Restores = 48
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 25 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 150 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{Hybrid: true})
	if err != nil {
		return nil, err
	}
	quoter, err := newQuoteFactory(env, prot)
	if err != nil {
		return nil, err
	}

	fleetKey := bytes.Repeat([]byte{0xC4}, 32)
	fleetAudit := obs.NewAuditLog(0)

	// Replica 0 is the lone seed; every other member bootstraps the full
	// mesh from it. The closure captures seed0 by pointer because replica
	// 0's address is only known once its listener is bound.
	var seed0 string
	gossipFor := func(m *obs.Registry) func(addr string) []elide.ServerOption {
		return func(addr string) []elide.ServerOption {
			seeds := []string{}
			if seed0 != "" && seed0 != addr {
				seeds = append(seeds, seed0)
			}
			return []elide.ServerOption{
				elide.WithServerMetrics(m),
				elide.WithServerAudit(fleetAudit),
				elide.WithResumeReplication(fleetKey, seeds...),
				elide.WithGossip(addr),
				elide.WithGossipInterval(cfg.GossipInterval),
				elide.WithSuspectTimeout(cfg.SuspectTimeout),
			}
		}
	}

	replicas := make([]*replica, cfg.Replicas)
	fleetMetrics := make([]*obs.Registry, cfg.Replicas)
	for i := range replicas {
		fleetMetrics[i] = obs.NewRegistry()
		replicas[i] = &replica{prot: prot, env: env, msrv: fleetMetrics[i], optsFor: gossipFor(fleetMetrics[i])}
		if err := replicas[i].start(); err != nil {
			return nil, err
		}
		if i == 0 {
			seed0 = replicas[0].addr
		}
	}
	// The legacy replica: same enclave, no fleet key, no gossip — the
	// PR-9-era binary that must keep working untouched.
	legacyMetrics := obs.NewRegistry()
	legacy := &replica{prot: prot, env: env, msrv: legacyMetrics}
	if err := legacy.start(); err != nil {
		return nil, err
	}
	addedMetrics := obs.NewRegistry()
	added := &replica{prot: prot, env: env, msrv: addedMetrics, optsFor: gossipFor(addedMetrics)}
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
		legacy.kill()
		added.kill()
	}()

	// Wait for the mesh to self-assemble from the single seed before any
	// load: every member must see every other member.
	memberCtx, memberCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer memberCancel()
	if err := waitFleetView(memberCtx, replicas[0].addr, cfg.Replicas); err != nil {
		return nil, fmt.Errorf("bench: mesh bootstrap: %w", err)
	}

	poolMetrics := obs.NewRegistry()
	clientMetrics := obs.NewRegistry()
	runtimeMetrics := obs.NewRegistry()
	churnMetrics := obs.NewRegistry()
	clientOpts := []elide.FailoverOption{
		elide.WithFailoverMetrics(poolMetrics),
		elide.WithBreakerCooldown(200 * time.Millisecond),
		elide.WithEndpointClientOptions(
			elide.WithClientMetrics(clientMetrics),
			elide.WithMaxRetries(1),
			elide.WithBackoff(10*time.Millisecond, 100*time.Millisecond),
			elide.WithDialTimeout(10*time.Second),
			elide.WithRequestTimeout(30*time.Second),
		),
	}
	addrs := make([]string, 0, cfg.Replicas+1)
	for _, r := range replicas {
		addrs = append(addrs, r.addr)
	}
	addrs = append(addrs, legacy.addr)
	pool := elide.NewEndpointPool(addrs, clientOpts...)
	if err := pool.SyncMembership(memberCtx); err != nil {
		return nil, fmt.Errorf("bench: initial membership sync: %w", err)
	}
	watchCtx, watchStop := context.WithCancel(context.Background())
	defer watchStop()
	pool.WatchMembership(watchCtx, cfg.GossipInterval)

	// Pre-establish the sessions the cold-added member must later resume
	// without re-attesting, and wait for the push layer to fan them out.
	sessions := make([]resumeSession, cfg.Sessions)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	for i := range sessions {
		priv, pub, err := sdk.GenerateECDHKeypair()
		if err != nil {
			return nil, err
		}
		q, err := quoter.quoteFor(pub)
		if err != nil {
			return nil, err
		}
		c := elide.NewTCPClient(replicas[0].addr,
			elide.WithProtocolVersion(elide.ProtoV1),
			elide.WithDialTimeout(cfg.Timeout),
			elide.WithRequestTimeout(cfg.Timeout))
		spub, err := c.Attest(ctx, q, pub)
		_ = c.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: session %d attest: %w", i, err)
		}
		sessions[i] = resumeSession{priv: priv, pub: pub, quote: q, serverPub: spub}
	}
	for i := 1; i < cfg.Replicas; i++ {
		if err := waitCounterAtLeast(fleetMetrics[i], "server.resume_replicated", uint64(cfg.Sessions), 15*time.Second); err != nil {
			return nil, fmt.Errorf("bench: replica %d: %w", i, err)
		}
	}

	res := &ChurnResult{
		Program:  p.Name,
		Replicas: cfg.Replicas,
		Restores: cfg.Restores,
		Workers:  cfg.Workers,
		Sessions: cfg.Sessions,
	}

	var completed atomic.Int64
	waitCompleted := func(n int) {
		for int(completed.Load()) < n {
			time.Sleep(5 * time.Millisecond)
		}
	}
	poolSize := func() int { return len(pool.Endpoints()) }
	victim := replicas[1]

	// The controller runs the churn script in sequence; each step gates on
	// restore progress so the fleet is under load when it changes shape.
	var ctlErr error
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		ctlErr = func() error {
			// 1/4: kill a member. The fleet must gossip it dead and the
			// client pool must shed the endpoint on its own.
			waitCompleted(cfg.Restores / 4)
			res.PoolBeforeKill = poolSize()
			victim.kill()
			res.Kills++
			if err := waitMemberStatus(replicas[0].addr, victim.addr, elide.MemberDead, 15*time.Second); err != nil {
				return fmt.Errorf("killed member never declared dead: %w", err)
			}
			if err := waitPoolSize(pool, res.PoolBeforeKill-1, 15*time.Second); err != nil {
				return fmt.Errorf("pool kept the dead endpoint: %w", err)
			}
			res.PoolAfterKill = poolSize()

			// 1/2: cold-add a brand-new member seeded with replica 0 only.
			// It must learn the fleet, pull every resume record via
			// anti-entropy, and then resume all the pre-established
			// sessions without one attestation flight.
			waitCompleted(cfg.Restores / 2)
			if err := added.start(); err != nil {
				return fmt.Errorf("cold member start: %w", err)
			}
			res.Added++
			t0 := time.Now()
			deadline := time.Now().Add(30 * time.Second)
			for {
				if srv := added.server(); srv != nil && srv.ResumeLen() >= cfg.Sessions {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("cold member held %d/%d resume records after 30s",
						added.server().ResumeLen(), cfg.Sessions)
				}
				time.Sleep(2 * time.Millisecond)
			}
			conv := time.Since(t0)
			res.ConvergenceMs = float64(conv.Nanoseconds()) / 1e6
			res.ConvergenceRounds = int(conv/cfg.GossipInterval) + 1
			if err := waitPoolSize(pool, res.PoolAfterKill+1, 15*time.Second); err != nil {
				return fmt.Errorf("pool never admitted the added member: %w", err)
			}
			res.PoolAfterAdd = poolSize()

			// 3/4: the killed member comes back with a fresh incarnation
			// and must out-bid its own death.
			waitCompleted(3 * cfg.Restores / 4)
			if err := victim.start(); err != nil {
				return fmt.Errorf("restart: %w", err)
			}
			res.Restarts++
			if err := waitMemberStatus(replicas[0].addr, victim.addr, elide.MemberAlive, 15*time.Second); err != nil {
				return fmt.Errorf("restarted member never revived: %w", err)
			}
			return nil
		}()
	}()

	type jobResult struct {
		outcome *elide.RestoreOutcome
		err     error
		wlErr   error
	}
	results := make([]jobResult, cfg.Restores)
	jobs := make(chan int)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runChaosJob(env, prot, p, pool, runtimeMetrics, churnMetrics, cfg.Timeout)
				completed.Add(1)
			}
		}()
	}
	for i := 0; i < cfg.Restores; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	<-ctlDone
	if ctlErr != nil {
		return nil, fmt.Errorf("bench: churn controller: %w", ctlErr)
	}

	// With the workers drained, resume every pre-established session on
	// the cold-added member. It converged mid-run via anti-entropy, so any
	// attestation flight it runs now is a downgrade — the delta must be 0.
	// (Measured post-run because workers land full attests on it through
	// the pool, which would falsely inflate a mid-run reading.)
	attestsBefore := addedMetrics.Counter("server.attest_ok").Load()
	for i := range sessions {
		ss := &sessions[i]
		c := elide.NewTCPClient(added.addr,
			elide.WithProtocolVersion(elide.ProtoV1),
			elide.WithDialTimeout(cfg.Timeout),
			elide.WithRequestTimeout(cfg.Timeout))
		spub, err := c.ResumeAttest(ctx, ss.quote, ss.pub)
		_ = c.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: session %d resume on the added member: %w", i, err)
		}
		if bytes.Equal(spub, ss.serverPub) {
			res.AddedResumed++
		}
	}
	res.AddedExtraAttestFlights = addedMetrics.Counter("server.attest_ok").Load() - attestsBefore

	// The legacy replica served static-pool traffic throughout; prove it
	// still answers on its own.
	legacyPool := elide.NewEndpointPool([]string{legacy.addr}, clientOpts...)
	res.LegacyRestores = 4
	for i := 0; i < res.LegacyRestores; i++ {
		r := runChaosJob(env, prot, p, legacyPool, runtimeMetrics, churnMetrics, cfg.Timeout)
		if r.err == nil && r.wlErr == nil {
			res.LegacySucceeded++
		}
	}

	for i := range results {
		r := &results[i]
		switch {
		case r.err == nil && r.wlErr == nil:
			res.Succeeded++
		case r.err == nil:
			res.WorkloadFailures++
		case errors.Is(r.err, elide.ErrRestoreFailed),
			errors.Is(r.err, context.DeadlineExceeded),
			errors.Is(r.err, context.Canceled):
			res.TypedFailures++
		default:
			res.UntypedFailures++
		}
	}

	audits := fleetAudit.Counts()
	res.MemberJoins = audits[obs.AuditMemberJoin]
	res.MemberSuspects = audits[obs.AuditMemberSuspect]
	res.MemberDeaths = audits[obs.AuditMemberDead]
	res.AntiEntropy = audits[obs.AuditAntiEntropy]
	res.RestoreLatency = summarize(churnMetrics.Snapshot().Histograms["chaos.restore_ns"])
	res.Counters = map[string]uint64{}
	snaps := []obs.Snapshot{poolMetrics.Snapshot(), clientMetrics.Snapshot(),
		runtimeMetrics.Snapshot(), legacyMetrics.Snapshot(), addedMetrics.Snapshot()}
	for _, m := range fleetMetrics {
		snaps = append(snaps, m.Snapshot())
	}
	for _, snap := range snaps {
		for k, v := range snap.Counters {
			res.Counters[k] += v
		}
	}
	return res, nil
}

// waitFleetView polls the membership query on addr until it reports
// want alive members (the querying server included).
func waitFleetView(ctx context.Context, addr string, want int) error {
	for {
		ms, err := queryMembers(ctx, addr)
		if err == nil {
			alive := 0
			for _, m := range ms {
				if m.Status == elide.MemberAlive {
					alive++
				}
			}
			if alive >= want {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet view never reached %d alive members: %w", want, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// waitMemberStatus polls addr's fleet view until member reaches st.
func waitMemberStatus(addr, member string, st elide.MemberStatus, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		ms, err := queryMembers(ctx, addr)
		if err == nil {
			for _, m := range ms {
				if m.Addr == member && m.Status == st {
					return nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("member %s never reached %s in %s's view", member, st, addr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func queryMembers(ctx context.Context, addr string) ([]elide.Member, error) {
	c := elide.NewTCPClient(addr,
		elide.WithDialTimeout(2*time.Second),
		elide.WithRequestTimeout(2*time.Second))
	defer func() { _ = c.Close() }()
	return c.Members(ctx)
}

func waitPoolSize(pool *elide.EndpointPool, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if got := len(pool.Endpoints()); got == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("pool size %d, want %d", len(pool.Endpoints()), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitCounterAtLeast(m *obs.Registry, name string, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.Counter(name).Load() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("counter %s = %d, want >= %d", name, m.Counter(name).Load(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}
