package bench

import (
	"sync"
	"testing"

	"sgxelide/internal/elide"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// sharedEnv reuses one platform across package tests (EPC is large enough;
// enclaves are destroyed after use where it matters).
func sharedEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

// TestBaselines runs every benchmark's built-in test suite in a plain SGX
// enclave — proving the seven ports are correct against their reference
// implementations (crypto/aes, crypto/des, crypto/sha*, and the Go game
// oracles).
func TestBaselines(t *testing.T) {
	env := sharedEnv(t)
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			encl, err := BuildBaseline(env, p)
			if err != nil {
				t.Fatal(err)
			}
			defer encl.Destroy()
			if err := p.Workload(env.Host, encl); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestProtectedRemote runs every benchmark through the full SgxElide flow
// in remote-data mode: sanitize, sign, attest, restore, then the test suite.
func TestProtectedRemote(t *testing.T) {
	env := sharedEnv(t)
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if prot.Stats.SanitizedFunctions == 0 {
				t.Fatal("nothing sanitized")
			}
			code, err := RunProtected(env, prot, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if code != elide.RestoreOKServer {
				t.Fatalf("restore code %d", code)
			}
		})
	}
}

// TestProtectedLocal runs one representative benchmark in local-data mode
// (the full matrix is exercised by Table 2 / Figure 4).
func TestProtectedLocal(t *testing.T) {
	env := sharedEnv(t)
	for _, p := range []*Program{AES, Crackme} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prot, err := BuildProtected(env, p, elide.SanitizeOptions{EncryptLocal: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunProtected(env, prot, p, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSealedSecondLaunch exercises the sealing extension on a benchmark.
func TestSealedSecondLaunch(t *testing.T) {
	env := sharedEnv(t)
	prot, err := BuildProtected(env, Crackme, elide.SanitizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := prot.NewServerFor(env.CA)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	if code, err := encl.ECall("elide_restore", elide.FlagSealAfter); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}
	encl.Destroy()
	encl2, _, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, rt.Files)
	if err != nil {
		t.Fatal(err)
	}
	defer encl2.Destroy()
	code, err := encl2.ECall("elide_restore", elide.FlagTrySealed)
	if err != nil || code != elide.RestoreOKSealed {
		t.Fatalf("sealed restore: %d %v", code, err)
	}
	if err := Crackme.Workload(env.Host, encl2); err != nil {
		t.Fatal(err)
	}
}

// TestTable1Smoke checks the Table 1 harness produces plausible rows.
func TestTable1Smoke(t *testing.T) {
	env := sharedEnv(t)
	rows, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SanitizedFunctions == 0 || r.SanitizedBytes == 0 || r.TCFunctions <= r.SanitizedFunctions {
			t.Errorf("%s: implausible row %+v", r.Name, r)
		}
		if r.TCwElide <= r.TCwSGX || r.UCwElide <= r.UCwSGX {
			t.Errorf("%s: elide LoC not added", r.Name)
		}
	}
	t.Logf("\n%s", RenderTable1(rows))
}

// TestServerBenchSmoke runs the transport benchmark at a small scale and
// checks the JSON-bound result has sane latency and counter fields.
func TestServerBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	res, err := ServerBench(env, ServerBenchConfig{Clients: 3, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restores != 3 {
		t.Fatalf("restores = %d, want 3", res.Restores)
	}
	if res.ServerAttest.Count < 3 || res.ServerRequest.Count < 3 {
		t.Fatalf("latency histograms underpopulated: %+v", res)
	}
	if res.ServerAttest.P50Us <= 0 || res.ServerRequest.P99Us < res.ServerRequest.P50Us {
		t.Fatalf("implausible percentiles: %+v", res.ServerAttest)
	}
	if res.Counters["server.attest_ok"] < 3 || res.Counters["client.dials"] < 3 {
		t.Fatalf("counters missing: %v", res.Counters)
	}
	t.Logf("\n%s", res)
}
