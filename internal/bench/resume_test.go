package bench

import "testing"

// TestResumeBenchSmoke runs a scaled-down kill-then-resume-elsewhere
// scenario and asserts the headline numbers the replication layer exists
// for: with replication, every session resumes on the peer with ZERO
// attestation flights; without it, every one pays a full re-attestation.
func TestResumeBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	cfg := ResumeConfig{Sessions: 6}
	if testing.Short() {
		cfg.Sessions = 3
	}
	res, err := ResumeBench(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	if res.Replicated.Resumed != cfg.Sessions {
		t.Fatalf("replicated: %d/%d sessions resumed on the peer", res.Replicated.Resumed, cfg.Sessions)
	}
	if res.Replicated.ExtraAttestFlights != 0 {
		t.Fatalf("replicated: peer ran %d full attestation flights, want 0", res.Replicated.ExtraAttestFlights)
	}
	if res.Baseline.ReAttested != cfg.Sessions {
		t.Fatalf("baseline: %d/%d sessions silently re-attested", res.Baseline.ReAttested, cfg.Sessions)
	}
	if res.Baseline.ExtraAttestPerResume != 1 {
		t.Fatalf("baseline: %.2f extra attest flights per resume, want 1", res.Baseline.ExtraAttestPerResume)
	}
}
