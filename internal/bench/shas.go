package bench

import (
	"bytes"
	"crypto/sha256"
	"crypto/sha512"
	"fmt"
	"math/big"
	"strings"

	"sgxelide/internal/sdk"
)

// The Shas benchmark ports RFC 6234 (benchmark [4] in the paper): the full
// SHA-2 family — SHA-224, SHA-256, SHA-384, and SHA-512 — inside the
// enclave. It is the largest trusted component, as in the paper's Table 1.
// All round constants and initial vectors are derived (fractional parts of
// square/cube roots of primes) rather than hand-typed, and the results are
// verified against crypto/sha256 and crypto/sha512.

// firstPrimes returns the first n primes.
func firstPrimes(n int) []int64 {
	var primes []int64
	for x := int64(2); len(primes) < n; x++ {
		isP := true
		for _, p := range primes {
			if p*p > x {
				break
			}
			if x%p == 0 {
				isP = false
				break
			}
		}
		if isP {
			primes = append(primes, x)
		}
	}
	return primes
}

// sqrtFracBits returns bits [skip, skip+bits) of the fractional part of
// sqrt(p).
func sqrtFracBits(p int64, skip, bits uint) *big.Int {
	shift := 2 * (skip + bits)
	v := new(big.Int).Lsh(big.NewInt(p), shift)
	v.Sqrt(v) // floor(sqrt(p) * 2^(skip+bits))
	mask := new(big.Int).Lsh(big.NewInt(1), bits)
	mask.Sub(mask, big.NewInt(1))
	return v.And(v, mask)
}

// cbrtFracBits returns the first `bits` fractional bits of cbrt(p).
func cbrtFracBits(p int64, bits uint) *big.Int {
	// Binary search x = floor(cbrt(p * 2^(3*bits))).
	target := new(big.Int).Lsh(big.NewInt(p), 3*bits)
	lo := big.NewInt(0)
	hi := new(big.Int).Lsh(big.NewInt(1), bits+8)
	for lo.Cmp(hi) < 0 {
		mid := new(big.Int).Add(lo, hi)
		mid.Add(mid, big.NewInt(1))
		mid.Rsh(mid, 1)
		cube := new(big.Int).Mul(mid, mid)
		cube.Mul(cube, mid)
		if cube.Cmp(target) <= 0 {
			lo = mid
		} else {
			hi = new(big.Int).Sub(mid, big.NewInt(1))
		}
	}
	mask := new(big.Int).Lsh(big.NewInt(1), bits)
	mask.Sub(mask, big.NewInt(1))
	return lo.And(lo, mask)
}

// cWordTable renders 32-bit constants as a C initializer.
func cWordTable(name string, vals []uint32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "const uint32_t %s[%d] = {\n", name, len(vals))
	for i, v := range vals {
		if i%6 == 0 {
			sb.WriteString("    ")
		}
		fmt.Fprintf(&sb, "0x%08xu", v)
		if i != len(vals)-1 {
			sb.WriteString(",")
		}
		if i%6 == 5 {
			sb.WriteString("\n")
		} else if i != len(vals)-1 {
			sb.WriteString(" ")
		}
	}
	sb.WriteString("};\n")
	return sb.String()
}

// cQuadTable renders 64-bit constants as a C initializer.
func cQuadTable(name string, vals []uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "const uint64_t %s[%d] = {\n", name, len(vals))
	for i, v := range vals {
		if i%4 == 0 {
			sb.WriteString("    ")
		}
		fmt.Fprintf(&sb, "0x%016xu", v)
		if i != len(vals)-1 {
			sb.WriteString(",")
		}
		if i%4 == 3 {
			sb.WriteString("\n")
		} else if i != len(vals)-1 {
			sb.WriteString(" ")
		}
	}
	sb.WriteString("};\n")
	return sb.String()
}

const shasEDL = `
enclave {
    trusted {
        public uint64_t ecall_sha2(uint64_t mode, [in, size=len] uint8_t* data, uint64_t len, [out, size=64] uint8_t* digest);
    };
    untrusted {
    };
};
`

// shasTrustedC builds the trusted component with derived constants.
func shasTrustedC() string {
	primes := firstPrimes(80)

	k256 := make([]uint32, 64)
	for i := 0; i < 64; i++ {
		k256[i] = uint32(cbrtFracBits(primes[i], 32).Uint64())
	}
	h256 := make([]uint32, 8)
	h224 := make([]uint32, 8)
	for i := 0; i < 8; i++ {
		h256[i] = uint32(sqrtFracBits(primes[i], 0, 32).Uint64())
		h224[i] = uint32(sqrtFracBits(primes[i+8], 32, 32).Uint64())
	}
	k512 := make([]uint64, 80)
	for i := 0; i < 80; i++ {
		k512[i] = cbrtFracBits(primes[i], 64).Uint64()
	}
	h512 := make([]uint64, 8)
	h384 := make([]uint64, 8)
	for i := 0; i < 8; i++ {
		h512[i] = sqrtFracBits(primes[i], 0, 64).Uint64()
		h384[i] = sqrtFracBits(primes[i+8], 0, 64).Uint64()
	}

	var sb strings.Builder
	sb.WriteString("/* RFC 6234 port: SHA-224 / SHA-256 / SHA-384 / SHA-512 */\n")
	sb.WriteString(cWordTable("sha2_k256", k256))
	sb.WriteString(cWordTable("sha2_h256_iv", h256))
	sb.WriteString(cWordTable("sha2_h224_iv", h224))
	sb.WriteString(cQuadTable("sha2_k512", k512))
	sb.WriteString(cQuadTable("sha2_h512_iv", h512))
	sb.WriteString(cQuadTable("sha2_h384_iv", h384))
	sb.WriteString(`
uint32_t sha2_rotr32(uint32_t x, int n) {
    return (x >> n) | (x << (32 - n));
}

uint64_t sha2_rotr64(uint64_t x, int n) {
    return (x >> n) | (x << (64 - n));
}

uint32_t sha2_st32[8];
uint64_t sha2_st64[8];

void sha2_block256(uint8_t* p) {
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
        w[i] = ((uint32_t)p[i * 4] << 24) | ((uint32_t)p[i * 4 + 1] << 16)
             | ((uint32_t)p[i * 4 + 2] << 8) | (uint32_t)p[i * 4 + 3];
    }
    for (int i = 16; i < 64; i++) {
        uint32_t s0 = sha2_rotr32(w[i - 15], 7) ^ sha2_rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = sha2_rotr32(w[i - 2], 17) ^ sha2_rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = sha2_st32[0];
    uint32_t b = sha2_st32[1];
    uint32_t c = sha2_st32[2];
    uint32_t d = sha2_st32[3];
    uint32_t e = sha2_st32[4];
    uint32_t f = sha2_st32[5];
    uint32_t g = sha2_st32[6];
    uint32_t hh = sha2_st32[7];
    for (int i = 0; i < 64; i++) {
        uint32_t S1 = sha2_rotr32(e, 6) ^ sha2_rotr32(e, 11) ^ sha2_rotr32(e, 25);
        uint32_t ch = (e & f) ^ ((~e) & g);
        uint32_t t1 = hh + S1 + ch + sha2_k256[i] + w[i];
        uint32_t S0 = sha2_rotr32(a, 2) ^ sha2_rotr32(a, 13) ^ sha2_rotr32(a, 22);
        uint32_t mj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + mj;
        hh = g; g = f; f = e;
        e = d + t1;
        d = c; c = b; b = a;
        a = t1 + t2;
    }
    sha2_st32[0] += a; sha2_st32[1] += b; sha2_st32[2] += c; sha2_st32[3] += d;
    sha2_st32[4] += e; sha2_st32[5] += f; sha2_st32[6] += g; sha2_st32[7] += hh;
}

void sha2_block512(uint8_t* p) {
    uint64_t w[80];
    for (int i = 0; i < 16; i++) {
        uint64_t v = 0;
        for (int j = 0; j < 8; j++)
            v = (v << 8) | (uint64_t)p[i * 8 + j];
        w[i] = v;
    }
    for (int i = 16; i < 80; i++) {
        uint64_t s0 = sha2_rotr64(w[i - 15], 1) ^ sha2_rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7);
        uint64_t s1 = sha2_rotr64(w[i - 2], 19) ^ sha2_rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint64_t a = sha2_st64[0];
    uint64_t b = sha2_st64[1];
    uint64_t c = sha2_st64[2];
    uint64_t d = sha2_st64[3];
    uint64_t e = sha2_st64[4];
    uint64_t f = sha2_st64[5];
    uint64_t g = sha2_st64[6];
    uint64_t hh = sha2_st64[7];
    for (int i = 0; i < 80; i++) {
        uint64_t S1 = sha2_rotr64(e, 14) ^ sha2_rotr64(e, 18) ^ sha2_rotr64(e, 41);
        uint64_t ch = (e & f) ^ ((~e) & g);
        uint64_t t1 = hh + S1 + ch + sha2_k512[i] + w[i];
        uint64_t S0 = sha2_rotr64(a, 28) ^ sha2_rotr64(a, 34) ^ sha2_rotr64(a, 39);
        uint64_t mj = (a & b) ^ (a & c) ^ (b & c);
        uint64_t t2 = S0 + mj;
        hh = g; g = f; f = e;
        e = d + t1;
        d = c; c = b; b = a;
        a = t1 + t2;
    }
    sha2_st64[0] += a; sha2_st64[1] += b; sha2_st64[2] += c; sha2_st64[3] += d;
    sha2_st64[4] += e; sha2_st64[5] += f; sha2_st64[6] += g; sha2_st64[7] += hh;
}

uint64_t sha2_small(uint64_t mode, uint8_t* data, uint64_t len, uint8_t* digest) {
    uint8_t tail[128];
    for (int i = 0; i < 8; i++) {
        if (mode == 224) sha2_st32[i] = sha2_h224_iv[i];
        else sha2_st32[i] = sha2_h256_iv[i];
    }
    uint64_t off = 0;
    while (off + 64 <= len) {
        sha2_block256(data + off);
        off += 64;
    }
    uint64_t rest = len - off;
    for (uint64_t i = 0; i < rest; i++) tail[i] = data[off + i];
    tail[rest] = 0x80;
    uint64_t padded = 64;
    if (rest + 9 > 64) padded = 128;
    for (uint64_t i = rest + 1; i < padded - 8; i++) tail[i] = 0;
    uint64_t bits = len * 8;
    for (int i = 0; i < 8; i++)
        tail[padded - 1 - i] = (uint8_t)(bits >> (i * 8));
    sha2_block256(tail);
    if (padded == 128) sha2_block256(tail + 64);

    uint64_t words = 8;
    if (mode == 224) words = 7;
    for (uint64_t i = 0; i < words; i++) {
        digest[i * 4]     = (uint8_t)(sha2_st32[i] >> 24);
        digest[i * 4 + 1] = (uint8_t)(sha2_st32[i] >> 16);
        digest[i * 4 + 2] = (uint8_t)(sha2_st32[i] >> 8);
        digest[i * 4 + 3] = (uint8_t)sha2_st32[i];
    }
    return words * 4;
}

uint64_t sha2_big(uint64_t mode, uint8_t* data, uint64_t len, uint8_t* digest) {
    uint8_t tail[256];
    for (int i = 0; i < 8; i++) {
        if (mode == 384) sha2_st64[i] = sha2_h384_iv[i];
        else sha2_st64[i] = sha2_h512_iv[i];
    }
    uint64_t off = 0;
    while (off + 128 <= len) {
        sha2_block512(data + off);
        off += 128;
    }
    uint64_t rest = len - off;
    for (uint64_t i = 0; i < rest; i++) tail[i] = data[off + i];
    tail[rest] = 0x80;
    uint64_t padded = 128;
    if (rest + 17 > 128) padded = 256;
    for (uint64_t i = rest + 1; i < padded - 8; i++) tail[i] = 0;
    uint64_t bits = len * 8; /* < 2^64: the 128-bit length's high half is 0 */
    for (int i = 0; i < 8; i++)
        tail[padded - 1 - i] = (uint8_t)(bits >> (i * 8));
    sha2_block512(tail);
    if (padded == 256) sha2_block512(tail + 128);

    uint64_t words = 8;
    if (mode == 384) words = 6;
    for (uint64_t i = 0; i < words; i++) {
        for (int j = 0; j < 8; j++)
            digest[i * 8 + j] = (uint8_t)(sha2_st64[i] >> ((7 - j) * 8));
    }
    return words * 8;
}

uint64_t ecall_sha2(uint64_t mode, uint8_t* data, uint64_t len, uint8_t* digest) {
    if (mode == 224 || mode == 256) return sha2_small(mode, data, len, digest);
    if (mode == 384 || mode == 512) return sha2_big(mode, data, len, digest);
    return 0;
}
`)
	return sb.String()
}

// Shas is the RFC 6234 benchmark.
var Shas = &Program{
	Name:     "Shas",
	EDL:      shasEDL,
	TrustedC: shasTrustedC(),
	UCFile:   "shas.go",
	Workload: shasWorkload,
}

// shasWorkload checks all four algorithms across padding-edge lengths.
func shasWorkload(h *sdk.Host, e *sdk.Enclave) error {
	msg := make([]byte, 600)
	for i := range msg {
		msg[i] = byte(i*13 + 5)
	}
	out := h.Alloc(64)
	ref := map[uint64]func([]byte) []byte{
		224: func(b []byte) []byte { s := sha256.Sum224(b); return s[:] },
		256: func(b []byte) []byte { s := sha256.Sum256(b); return s[:] },
		384: func(b []byte) []byte { s := sha512.Sum384(b); return s[:] },
		512: func(b []byte) []byte { s := sha512.Sum512(b); return s[:] },
	}
	for _, mode := range []uint64{224, 256, 384, 512} {
		for _, n := range []int{0, 1, 55, 56, 64, 111, 112, 119, 120, 128, 129, 600} {
			in := h.AllocBytes(msg[:max(n, 1)])
			got, err := e.ECall("ecall_sha2", mode, in, uint64(n), out)
			if err != nil {
				return fmt.Errorf("sha%d(%d): %w", mode, n, err)
			}
			want := ref[mode](msg[:n])
			if int(got) != len(want) {
				return fmt.Errorf("sha%d(%d): digest length %d, want %d", mode, n, got, len(want))
			}
			if gotBytes := h.ReadBytes(out, len(want)); !bytes.Equal(gotBytes, want) {
				return fmt.Errorf("sha%d(%d bytes): got %x, want %x", mode, n, gotBytes, want)
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
