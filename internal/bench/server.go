package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ServerBenchConfig drives the authentication-server transport benchmark:
// Clients simultaneous machines, each dialing the TCP server, attesting,
// and restoring its own copy of Program's sanitized enclave.
type ServerBenchConfig struct {
	Program     string // benchmark name (see All); default "Sha1"
	Clients     int    // concurrent clients; default 16
	MaxSessions int    // server concurrent-session cap; default 8
}

// LatencySummary is the machine-readable slice of an obs histogram, in
// microseconds (the paper reports restore times in ms; transport
// operations land in the µs–ms range).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	MinUs  float64 `json:"min_us"`
	MaxUs  float64 `json:"max_us"`
}

func summarize(h obs.HistogramSnapshot) LatencySummary {
	us := func(ns float64) float64 { return ns / 1e3 }
	return LatencySummary{
		Count:  h.Count,
		MeanUs: us(float64(h.Mean().Nanoseconds())),
		P50Us:  us(float64(h.P50Nanos)),
		P90Us:  us(float64(h.P90Nanos)),
		P99Us:  us(float64(h.P99Nanos)),
		MinUs:  us(float64(h.MinNanos)),
		MaxUs:  us(float64(h.MaxNanos)),
	}
}

// ServerBenchResult is the JSON document elide-bench writes to
// BENCH_server.json.
type ServerBenchResult struct {
	Program     string  `json:"program"`
	Clients     int     `json:"clients"`
	MaxSessions int     `json:"max_sessions"`
	WallMs      float64 `json:"wall_ms"`
	Restores    int     `json:"restores"`

	// Server-side transport latencies (per attestation / per decrypted
	// channel request) and the raw counters backing them.
	ServerAttest  LatencySummary    `json:"server_attest_latency"`
	ServerRequest LatencySummary    `json:"server_request_latency"`
	ClientAttest  LatencySummary    `json:"client_attest_latency"`
	ClientRequest LatencySummary    `json:"client_request_latency"`
	Counters      map[string]uint64 `json:"counters"`
}

func (r *ServerBenchResult) String() string {
	return fmt.Sprintf(
		"server bench: %s, %d clients (cap %d): %d restores in %.1f ms\n"+
			"  attest  p50 %.0fµs  p90 %.0fµs  p99 %.0fµs (server-side, n=%d)\n"+
			"  request p50 %.0fµs  p90 %.0fµs  p99 %.0fµs (server-side, n=%d)",
		r.Program, r.Clients, r.MaxSessions, r.Restores, r.WallMs,
		r.ServerAttest.P50Us, r.ServerAttest.P90Us, r.ServerAttest.P99Us, r.ServerAttest.Count,
		r.ServerRequest.P50Us, r.ServerRequest.P90Us, r.ServerRequest.P99Us, r.ServerRequest.Count)
}

// ServerBench builds one protected program, serves it over TCP, and runs
// cfg.Clients concurrent full restores against it, each client on its own
// simulated machine. It returns the latency percentiles recorded by the
// server's and clients' obs registries.
func ServerBench(env *Env, cfg ServerBenchConfig) (*ServerBenchResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
	if err != nil {
		return nil, err
	}

	serverMetrics := obs.NewRegistry()
	clientMetrics := obs.NewRegistry()
	srv, err := prot.NewServerFor(env.CA,
		elide.WithMaxSessions(cfg.MaxSessions),
		elide.WithServerMetrics(serverMetrics),
	)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		restores int
		firstErr error
	)
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := func() error {
				platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
				if err != nil {
					return err
				}
				host := sdk.NewHost(platform)
				client := elide.NewTCPClient(l.Addr().String(),
					elide.WithClientMetrics(clientMetrics),
					// Under heavy oversubscription (many clients, few
					// cores) generous deadlines keep the measurement about
					// the transport, not the scheduler.
					elide.WithDialTimeout(30*time.Second),
					elide.WithRequestTimeout(time.Minute),
				)
				defer func() { _ = client.Close() }()
				encl, rt, err := prot.Launch(host, client, prot.LocalFiles())
				if err != nil {
					return err
				}
				defer encl.Destroy()
				code, err := encl.ECall("elide_restore", 0)
				if err != nil {
					return err
				}
				if code != elide.RestoreOKServer {
					return fmt.Errorf("restore code %d (runtime: %v)", code, rt.LastErr())
				}
				mu.Lock()
				restores++
				mu.Unlock()
				return nil
			}()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	cancel()
	if err := <-served; err != nil && !errors.Is(err, elide.ErrServerClosed) {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	ssnap := serverMetrics.Snapshot()
	csnap := clientMetrics.Snapshot()
	counters := make(map[string]uint64, len(ssnap.Counters)+len(csnap.Counters))
	for k, v := range ssnap.Counters {
		counters[k] = v
	}
	for k, v := range csnap.Counters {
		counters[k] = v
	}
	return &ServerBenchResult{
		Program:       p.Name,
		Clients:       cfg.Clients,
		MaxSessions:   cfg.MaxSessions,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		Restores:      restores,
		ServerAttest:  summarize(ssnap.Histograms["server.attest_ns"]),
		ServerRequest: summarize(ssnap.Histograms["server.request_ns"]),
		ClientAttest:  summarize(csnap.Histograms["client.attest_ns"]),
		ClientRequest: summarize(csnap.Histograms["client.request_ns"]),
		Counters:      counters,
	}, nil
}
