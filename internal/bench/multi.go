package bench

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// MultiBenchConfig drives the multi-enclave serving benchmark: one
// authentication server holding N distinct sanitized enclave identities in
// its secret store, restored concurrently by ClientsPer user machines per
// enclave over TCP.
type MultiBenchConfig struct {
	Enclaves    int // distinct sanitized enclaves; default 4, capped at len(All())
	ClientsPer  int // concurrent clients per enclave; default 4
	MaxSessions int // server concurrent-session cap; default 16
}

// MultiEnclaveResult is one enclave's slice of the benchmark.
type MultiEnclaveResult struct {
	Program    string `json:"program"`
	MrEnclave  string `json:"mrenclave"` // short hex prefix
	Restores   int    `json:"restores"`
	Attests    uint64 `json:"attests"`
	MetaServed uint64 `json:"meta_served"`
	DataServed uint64 `json:"data_served"`
}

// MultiBenchResult is the JSON document elide-bench writes to
// BENCH_multi.json.
type MultiBenchResult struct {
	Enclaves    int     `json:"enclaves"`
	ClientsPer  int     `json:"clients_per_enclave"`
	MaxSessions int     `json:"max_sessions"`
	WallMs      float64 `json:"wall_ms"`
	Restores    int     `json:"restores"`

	PerEnclave    []MultiEnclaveResult `json:"per_enclave"`
	ServerAttest  LatencySummary       `json:"server_attest_latency"`
	ServerRequest LatencySummary       `json:"server_request_latency"`
	Counters      map[string]uint64    `json:"counters"`
}

func (r *MultiBenchResult) String() string {
	s := fmt.Sprintf(
		"multi-enclave bench: %d enclaves x %d clients (cap %d): %d restores in %.1f ms\n"+
			"  attest  p50 %.0fµs  p90 %.0fµs  p99 %.0fµs (server-side, n=%d)\n"+
			"  request p50 %.0fµs  p90 %.0fµs  p99 %.0fµs (server-side, n=%d)",
		r.Enclaves, r.ClientsPer, r.MaxSessions, r.Restores, r.WallMs,
		r.ServerAttest.P50Us, r.ServerAttest.P90Us, r.ServerAttest.P99Us, r.ServerAttest.Count,
		r.ServerRequest.P50Us, r.ServerRequest.P90Us, r.ServerRequest.P99Us, r.ServerRequest.Count)
	for _, e := range r.PerEnclave {
		s += fmt.Sprintf("\n  %-10s mr=%s  restores=%d attests=%d meta=%d data=%d",
			e.Program, e.MrEnclave, e.Restores, e.Attests, e.MetaServed, e.DataServed)
	}
	return s
}

// MultiBench builds cfg.Enclaves distinct sanitized enclaves, registers
// them all in one SecretStore behind one TCP server, and restores each
// concurrently from ClientsPer independent user machines. Afterwards it
// cross-checks the store's per-enclave release counters against the
// restores performed — every enclave must have been served exactly its own
// secrets, exactly as often as its clients asked.
func MultiBench(env *Env, cfg MultiBenchConfig) (*MultiBenchResult, error) {
	programs := All()
	if cfg.Enclaves <= 0 {
		cfg.Enclaves = 4
	}
	if cfg.Enclaves > len(programs) {
		cfg.Enclaves = len(programs)
	}
	if cfg.ClientsPer <= 0 {
		cfg.ClientsPer = 4
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 16
	}

	store := elide.NewSecretStore()
	type deployment struct {
		prog *Program
		prot *elide.Protected
	}
	deployments := make([]deployment, 0, cfg.Enclaves)
	for i := 0; i < cfg.Enclaves; i++ {
		p := programs[i]
		prot, err := BuildProtected(env, p, elide.SanitizeOptions{})
		if err != nil {
			return nil, err
		}
		if _, err := store.Register(prot.Measurement, prot.Meta, prot.SecretData, p.Name); err != nil {
			return nil, err
		}
		deployments = append(deployments, deployment{prog: p, prot: prot})
	}

	serverMetrics := obs.NewRegistry()
	srv, err := elide.NewMultiServer(env.CA.PublicKey(), store,
		elide.WithMaxSessions(cfg.MaxSessions),
		elide.WithServerMetrics(serverMetrics),
	)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		restores = make([]int, len(deployments))
		firstErr error
	)
	for di := range deployments {
		for c := 0; c < cfg.ClientsPer; c++ {
			wg.Add(1)
			go func(di int) {
				defer wg.Done()
				d := deployments[di]
				err := func() error {
					platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
					if err != nil {
						return err
					}
					host := sdk.NewHost(platform)
					client := elide.NewTCPClient(l.Addr().String(),
						elide.WithDialTimeout(30*time.Second),
						elide.WithRequestTimeout(time.Minute),
					)
					defer func() { _ = client.Close() }()
					encl, rt, err := d.prot.Launch(host, client, d.prot.LocalFiles())
					if err != nil {
						return err
					}
					defer encl.Destroy()
					code, err := encl.ECall("elide_restore", 0)
					if err != nil {
						return err
					}
					if code != elide.RestoreOKServer {
						return fmt.Errorf("%s: restore code %d (runtime: %v)", d.prog.Name, code, rt.LastErr())
					}
					mu.Lock()
					restores[di]++
					mu.Unlock()
					return nil
				}()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(di)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	cancel()
	if err := <-served; err != nil && !errors.Is(err, elide.ErrServerClosed) {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	total := 0
	per := make([]MultiEnclaveResult, 0, len(deployments))
	for di, d := range deployments {
		entry, ok := store.Lookup(d.prot.Measurement)
		if !ok {
			return nil, fmt.Errorf("bench: %s vanished from the store", d.prog.Name)
		}
		st := entry.Stats()
		// Release-counter cross-check: each restore needs at least one
		// metadata and one data release of THIS enclave's entry (retries
		// after a transport hiccup can add more) — a shortfall would mean
		// the restore was fed from some other enclave's entry.
		if st.MetaServed < uint64(restores[di]) || st.DataServed < uint64(restores[di]) {
			return nil, fmt.Errorf("bench: %s served meta=%d data=%d for %d restores",
				d.prog.Name, st.MetaServed, st.DataServed, restores[di])
		}
		per = append(per, MultiEnclaveResult{
			Program:    d.prog.Name,
			MrEnclave:  hex.EncodeToString(d.prot.Measurement[:4]),
			Restores:   restores[di],
			Attests:    st.Attests,
			MetaServed: st.MetaServed,
			DataServed: st.DataServed,
		})
		total += restores[di]
	}

	snap := serverMetrics.Snapshot()
	return &MultiBenchResult{
		Enclaves:      cfg.Enclaves,
		ClientsPer:    cfg.ClientsPer,
		MaxSessions:   cfg.MaxSessions,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		Restores:      total,
		PerEnclave:    per,
		ServerAttest:  summarize(snap.Histograms["server.attest_ns"]),
		ServerRequest: summarize(snap.Histograms["server.request_ns"]),
		Counters:      snap.Counters,
	}, nil
}
