package bench

import (
	"testing"
	"time"
)

// TestChurnBenchSmoke drives a scaled-down churn run — a gossip fleet
// bootstrapped from one seed plus a legacy replica, with a kill, a
// cold-add, and a restart under restore load — and asserts the fleet
// contract: no untyped failures, the client pool tracked every membership
// change, the cold-added member converged on the fleet's resume records
// and served every resume without a single attestation flight, and the
// legacy replica kept working through the static pool path.
func TestChurnBenchSmoke(t *testing.T) {
	env := sharedEnv(t)
	cfg := ChurnConfig{
		Replicas:       3,
		Restores:       24,
		Workers:        4,
		Sessions:       6,
		GossipInterval: 15 * time.Millisecond,
		SuspectTimeout: 100 * time.Millisecond,
	}
	if testing.Short() {
		cfg.Replicas = 2
		cfg.Restores = 8
		cfg.Workers = 2
		cfg.Sessions = 4
	}
	res, err := ChurnBench(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.UntypedFailures != 0 {
		t.Fatalf("%d restores failed with untyped errors", res.UntypedFailures)
	}
	if res.WorkloadFailures != 0 {
		t.Fatalf("%d successful restores computed wrong answers", res.WorkloadFailures)
	}
	if res.Succeeded*4 < res.Restores*3 {
		t.Fatalf("only %d/%d restores succeeded", res.Succeeded, res.Restores)
	}
	if res.Kills != 1 || res.Restarts != 1 || res.Added != 1 {
		t.Fatalf("churn script incomplete: %d kills, %d restarts, %d added",
			res.Kills, res.Restarts, res.Added)
	}
	// The pool must shed the dead member and admit the cold one.
	if res.PoolAfterKill != res.PoolBeforeKill-1 {
		t.Fatalf("pool %d → %d across the kill, want it to shrink by one",
			res.PoolBeforeKill, res.PoolAfterKill)
	}
	if res.PoolAfterAdd != res.PoolAfterKill+1 {
		t.Fatalf("pool %d → %d across the add, want it to grow by one",
			res.PoolAfterKill, res.PoolAfterAdd)
	}
	// The headline: the cold member resumed everything from anti-entropy
	// state alone.
	if res.AddedResumed != res.Sessions {
		t.Fatalf("cold member resumed %d/%d sessions with the original key",
			res.AddedResumed, res.Sessions)
	}
	if res.AddedExtraAttestFlights != 0 {
		t.Fatalf("cold member ran %d attestation flights, want 0", res.AddedExtraAttestFlights)
	}
	if res.ConvergenceRounds <= 0 || res.ConvergenceRounds > 2000 {
		t.Fatalf("implausible convergence: %d gossip rounds", res.ConvergenceRounds)
	}
	if res.LegacySucceeded != res.LegacyRestores {
		t.Fatalf("legacy replica served %d/%d restores", res.LegacySucceeded, res.LegacyRestores)
	}
	if res.MemberSuspects == 0 || res.MemberDeaths == 0 || res.MemberJoins == 0 {
		t.Fatalf("missing churn audit events: %d joins, %d suspects, %d deaths",
			res.MemberJoins, res.MemberSuspects, res.MemberDeaths)
	}
}
