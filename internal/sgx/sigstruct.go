package sgx

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
)

// SigStruct is the enclave signature structure the developer ships with the
// enclave: the expected measurement plus identity fields, signed with the
// developer's RSA key. EINIT refuses enclaves whose measurement does not
// match a validly signed SIGSTRUCT.
type SigStruct struct {
	MrEnclave [32]byte
	ProdID    uint16
	SVN       uint16  // security version number
	_         [4]byte // explicit padding: boundary structs carry no implicit holes

	Modulus   []byte // signer public key modulus (big-endian)
	Exponent  int
	Signature []byte // RSASSA-PKCS1-v1_5 over body()
}

// body serializes the signed fields.
func (ss *SigStruct) body() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, "SIGSTRUCT"...)
	buf = append(buf, ss.MrEnclave[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, ss.ProdID)
	buf = binary.LittleEndian.AppendUint16(buf, ss.SVN)
	return buf
}

// SignEnclave produces a SIGSTRUCT for the given measurement with the
// developer's private key.
func SignEnclave(priv *rsa.PrivateKey, mrEnclave [32]byte, prodID, svn uint16) (*SigStruct, error) {
	ss := &SigStruct{
		MrEnclave: mrEnclave,
		ProdID:    prodID,
		SVN:       svn,
		Modulus:   priv.N.Bytes(),
		Exponent:  priv.E,
	}
	digest := sha256.Sum256(ss.body())
	sig, err := rsa.SignPKCS1v15(rand.Reader, priv, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: signing SIGSTRUCT: %w", err)
	}
	ss.Signature = sig
	return ss, nil
}

// Verify checks the SIGSTRUCT's signature against its embedded public key.
// (Trust in *which* signer is expressed through MRSIGNER, not here — as on
// real SGX, anyone can sign an enclave, and relying parties check identity.)
func (ss *SigStruct) Verify() error {
	if len(ss.Modulus) == 0 || len(ss.Signature) == 0 {
		return fmt.Errorf("sigstruct missing key or signature")
	}
	pub := &rsa.PublicKey{N: new(big.Int).SetBytes(ss.Modulus), E: ss.Exponent}
	digest := sha256.Sum256(ss.body())
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], ss.Signature); err != nil {
		return fmt.Errorf("sigstruct signature invalid: %w", err)
	}
	return nil
}

// MrSignerValue returns SHA-256 of the signer modulus (the MRSIGNER
// identity).
func (ss *SigStruct) MrSignerValue() [32]byte {
	return sha256.Sum256(ss.Modulus)
}
