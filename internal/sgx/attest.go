package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
)

// ReportDataSize is the size of the user data bound into a report (enough
// for a public key hash or channel binding, as on real SGX).
const ReportDataSize = 64

// Report is the EREPORT output: the enclave identity MACed with a key only
// the target enclave (via EGETKEY) and the CPU know — local attestation.
type Report struct {
	MrEnclave  [32]byte
	MrSigner   [32]byte
	ProdID     uint16
	Data       [ReportDataSize]byte
	TargetInfo [32]byte // measurement of the enclave the report is for
	MAC        [32]byte
}

func (r *Report) macBody() []byte {
	buf := make([]byte, 0, 192)
	buf = append(buf, "REPORT"...)
	buf = append(buf, r.MrEnclave[:]...)
	buf = append(buf, r.MrSigner[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, r.ProdID)
	buf = append(buf, r.Data[:]...)
	buf = append(buf, r.TargetInfo[:]...)
	return buf
}

// EReport produces a report about enclave e, targeted at the enclave with
// measurement targetInfo, binding reportData.
func (p *Platform) EReport(e *Enclave, targetInfo [32]byte, reportData [ReportDataSize]byte) (*Report, error) {
	if !e.initialized {
		return nil, fmt.Errorf("sgx: EREPORT before EINIT")
	}
	r := &Report{
		MrEnclave:  e.MrEnclave,
		MrSigner:   e.MrSigner,
		Data:       reportData,
		TargetInfo: targetInfo,
	}
	mac := hmac.New(sha256.New, p.reportKey(targetInfo))
	mac.Write(r.macBody())
	copy(r.MAC[:], mac.Sum(nil))
	return r, nil
}

// VerifyReport is the target-enclave side of local attestation: an enclave
// whose measurement equals report.TargetInfo can check the MAC with its
// report key. The model exposes it on the platform, gated on the verifier
// enclave's identity, mirroring EGETKEY(REPORT_KEY).
func (p *Platform) VerifyReport(verifier *Enclave, r *Report) error {
	if !verifier.initialized {
		return fmt.Errorf("sgx: report verification before EINIT")
	}
	if verifier.MrEnclave != r.TargetInfo {
		return fmt.Errorf("sgx: report not targeted at this enclave")
	}
	mac := hmac.New(sha256.New, p.reportKey(r.TargetInfo))
	mac.Write(r.macBody())
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return fmt.Errorf("sgx: report MAC invalid")
	}
	return nil
}

// --- remote attestation ---

// CA is the provisioning root of trust ("Intel"): it certifies each
// platform's device attestation key at manufacture time.
type CA struct {
	key *ecdsa.PrivateKey
}

// NewCA creates a root of trust.
func NewCA() (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: CA key: %w", err)
	}
	return &CA{key: key}, nil
}

// PublicKey returns the CA verification key that relying parties (the
// SgxElide authentication server) pin.
func (ca *CA) PublicKey() *ecdsa.PublicKey { return &ca.key.PublicKey }

// signDeviceKey certifies a platform's QE public key.
func (ca *CA) signDeviceKey(pub *ecdsa.PublicKey) ([]byte, error) {
	digest := sha256.Sum256(marshalPub(pub))
	return ecdsa.SignASN1(rand.Reader, ca.key, digest[:])
}

// marshalPub serializes an ECDSA public key for hashing and transport.
func marshalPub(pub *ecdsa.PublicKey) []byte {
	buf := []byte("ECDSA-P256")
	buf = append(buf, pub.X.Bytes()...)
	buf = append(buf, 0xFF)
	buf = append(buf, pub.Y.Bytes()...)
	return buf
}

// Quote is the quoting enclave's output for remote attestation: the report
// body signed with the platform's CA-certified device key.
type Quote struct {
	MrEnclave [32]byte
	MrSigner  [32]byte
	ProdID    uint16
	Data      [ReportDataSize]byte
	_         [6]byte // explicit padding: boundary structs carry no implicit holes

	Signature []byte // device-key signature over the quote body
	QEPubX    []byte // device public key
	QEPubY    []byte
	QECert    []byte // CA signature over the device public key
}

func (q *Quote) body() []byte {
	buf := make([]byte, 0, 160)
	buf = append(buf, "QUOTE"...)
	buf = append(buf, q.MrEnclave[:]...)
	buf = append(buf, q.MrSigner[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, q.ProdID)
	buf = append(buf, q.Data[:]...)
	return buf
}

// qeTargetInfo is the pseudo-measurement reports use to target the quoting
// enclave (the QE is a platform enclave; we model its identity as a fixed
// well-known value).
var qeTargetInfo = sha256.Sum256([]byte("sgx-quoting-enclave"))

// QETargetInfo returns the target info an enclave should use in EREPORT when
// requesting a quote.
func QETargetInfo() [32]byte { return qeTargetInfo }

// QuoteReport is the quoting enclave: it verifies the local-attestation
// report (with the QE report key) and signs a quote with the device key.
func (p *Platform) QuoteReport(r *Report) (*Quote, error) {
	if r.TargetInfo != qeTargetInfo {
		return nil, fmt.Errorf("sgx: quote: report not targeted at the quoting enclave")
	}
	mac := hmac.New(sha256.New, p.reportKey(r.TargetInfo))
	mac.Write(r.macBody())
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return nil, fmt.Errorf("sgx: quote: report MAC invalid")
	}
	q := &Quote{
		MrEnclave: r.MrEnclave,
		MrSigner:  r.MrSigner,
		ProdID:    r.ProdID,
		Data:      r.Data,
		QEPubX:    p.qeKey.PublicKey.X.Bytes(),
		QEPubY:    p.qeKey.PublicKey.Y.Bytes(),
		QECert:    p.qeCert,
	}
	digest := sha256.Sum256(q.body())
	sig, err := ecdsa.SignASN1(rand.Reader, p.qeKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: quote: %w", err)
	}
	q.Signature = sig
	return q, nil
}

// VerifyQuote is the relying-party (server) side of remote attestation: it
// checks that the device key is certified by the pinned CA and that the
// quote body is signed by that device key. The caller then decides whether
// MrEnclave/MrSigner identify an enclave it trusts.
func VerifyQuote(caPub *ecdsa.PublicKey, q *Quote) error {
	if q == nil {
		return fmt.Errorf("sgx: nil quote")
	}
	qePub := &ecdsa.PublicKey{
		Curve: elliptic.P256(),
		X:     new(big.Int).SetBytes(q.QEPubX),
		Y:     new(big.Int).SetBytes(q.QEPubY),
	}
	certDigest := sha256.Sum256(marshalPub(qePub))
	if !ecdsa.VerifyASN1(caPub, certDigest[:], q.QECert) {
		return fmt.Errorf("sgx: quote: device key not certified by the trusted CA")
	}
	digest := sha256.Sum256(q.body())
	if !ecdsa.VerifyASN1(qePub, digest[:], q.Signature) {
		return fmt.Errorf("sgx: quote: signature invalid")
	}
	return nil
}
