// Package sgx implements a software model of the Intel SGX platform: the
// Enclave Page Cache (EPC) with per-page EPCM permissions, the enclave
// lifecycle instructions (ECREATE/EADD/EEXTEND/EINIT), measurement,
// SIGSTRUCT signature verification, key derivation (EGETKEY), local
// attestation reports (EREPORT), a quoting enclave for remote attestation,
// and memory-encryption-at-rest semantics for EPC contents.
//
// The model preserves every property SgxElide depends on:
//
//   - Enclave contents are measured page by page before EINIT; EINIT fails
//     unless the SIGSTRUCT's measurement matches, so the *sanitized* enclave
//     is what gets attested.
//   - Page permissions are fixed at EADD and enforced by the CPU (the EVM
//     bus) on every access; there is no way to change them at runtime
//     (SGXv1), which is why the sanitizer must set PF_W statically. An
//     optional SGXv2 EMODPR-style restriction is provided for the paper's
//     §7 mitigation.
//   - Non-enclave (host) accesses to EPC get abort-page semantics: reads
//     return 0xFF, writes are dropped.
//   - Sealing keys derive from a per-platform hardware fuse key and the
//     enclave identity, so sealed blobs are bound to (platform, enclave).
package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// PageSize is the EPC page granularity.
const PageSize = 4096

// Perm is an EPCM page permission mask.
type Perm byte

const (
	PermR Perm = 1 << 0
	PermW Perm = 1 << 1
	PermX Perm = 1 << 2
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// epcPage is one EPC page plus its EPCM entry.
type epcPage struct {
	data    [PageSize]byte
	vaddr   uint64
	perm    Perm
	enclave *Enclave
	valid   bool

	// writeGen increases on every write to this page while it is
	// executable, invalidating the VM's decoded-instruction cache for it.
	writeGen uint64
}

// Config controls platform construction.
type Config struct {
	EPCPages int  // number of EPC pages; default 32768 (128 MiB)
	SGX2     bool // enable the EMODPR-style permission-restrict extension
}

// Platform is one SGX-capable machine: its EPC, its fused secrets, and its
// provisioned quoting enclave.
type Platform struct {
	cfg     Config
	epc     []epcPage
	free    []int    // free page indexes
	fuseKey [32]byte // hardware secret fused into the CPU
	meeKey  [32]byte // memory encryption engine key (boot-random)

	qeKey  *ecdsa.PrivateKey // quoting enclave's device attestation key
	qeCert []byte            // CA signature over the QE public key
	caPub  *ecdsa.PublicKey
}

// NewPlatform manufactures a platform provisioned by ca (the "Intel" root
// of trust that signs the device attestation key).
func NewPlatform(cfg Config, ca *CA) (*Platform, error) {
	if cfg.EPCPages == 0 {
		cfg.EPCPages = 32768
	}
	p := &Platform{cfg: cfg, epc: make([]epcPage, cfg.EPCPages)}
	p.free = make([]int, cfg.EPCPages)
	for i := range p.free {
		p.free[i] = cfg.EPCPages - 1 - i
	}
	if _, err := rand.Read(p.fuseKey[:]); err != nil {
		return nil, fmt.Errorf("sgx: fusing platform key: %w", err)
	}
	if _, err := rand.Read(p.meeKey[:]); err != nil {
		return nil, fmt.Errorf("sgx: MEE key: %w", err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: device key: %w", err)
	}
	p.qeKey = key
	p.qeCert, err = ca.signDeviceKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	p.caPub = &ca.key.PublicKey
	return p, nil
}

// FreePages returns the number of unallocated EPC pages.
func (p *Platform) FreePages() int { return len(p.free) }

// SGX2 reports whether the EMODPR-style extension is enabled.
func (p *Platform) SGX2() bool { return p.cfg.SGX2 }

// allocPage takes a free EPC page.
func (p *Platform) allocPage() (*epcPage, error) {
	if len(p.free) == 0 {
		return nil, fmt.Errorf("sgx: EPC exhausted")
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	pg := &p.epc[idx]
	*pg = epcPage{}
	return pg, nil
}

// freePage returns a page to the pool.
func (p *Platform) freePage(pg *epcPage) {
	for i := range p.epc {
		if &p.epc[i] == pg {
			p.epc[i] = epcPage{}
			p.free = append(p.free, i)
			return
		}
	}
}

// deriveKey derives a platform-bound key: HMAC-SHA256(fuseKey, purpose ||
// material), truncated to 16 bytes (AES-128, as the SGX SDK uses).
func (p *Platform) deriveKey(purpose string, material []byte) []byte {
	mac := hmac.New(sha256.New, p.fuseKey[:])
	mac.Write([]byte(purpose))
	mac.Write([]byte{0})
	mac.Write(material)
	return mac.Sum(nil)[:16]
}

// HostRead models a non-enclave read of physical memory backing an enclave
// page: abort-page semantics return 0xFF regardless of contents.
func (p *Platform) HostRead(e *Enclave, vaddr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = 0xFF
	}
	return out
}

// HostWrite models a non-enclave write to enclave memory: silently dropped.
func (p *Platform) HostWrite(e *Enclave, vaddr uint64, data []byte) {}

// DumpDRAM returns what a physical attacker probing DRAM would see for one
// enclave page: the MEE keeps EPC contents encrypted at rest (modeled as
// AES-CTR under the boot-time MEE key with the page address as nonce).
func (p *Platform) DumpDRAM(e *Enclave, vaddr uint64) ([]byte, error) {
	pg, ok := e.pages[vaddr&^uint64(PageSize-1)]
	if !ok {
		return nil, fmt.Errorf("sgx: no EPC page at %#x", vaddr)
	}
	return meeEncrypt(p.meeKey, vaddr, pg.data[:]), nil
}
