package sgx

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"testing"

	"sgxelide/internal/evm"
)

// testEnv builds a CA + platform pair.
func testEnv(t *testing.T, cfg Config) (*CA, *Platform) {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(cfg, ca)
	if err != nil {
		t.Fatal(err)
	}
	return ca, p
}

// devKey generates a small RSA signing key (1024 bits: fast for tests; the
// signer tool defaults to 3072).
func devKey(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

const (
	base  = uint64(0x10000000)
	size  = uint64(16 * PageSize)
	entry = base + 0x10
)

// buildEnclave creates, populates, measures, signs, and initializes an
// enclave with the given page contents.
func buildEnclave(t *testing.T, p *Platform, key *rsa.PrivateKey, pages map[uint64][]byte, perms map[uint64]Perm) *Enclave {
	t.Helper()
	e, err := p.ECreate(base, size, entry)
	if err != nil {
		t.Fatal(err)
	}
	for va, content := range pages {
		perm := perms[va]
		if perm == 0 {
			perm = PermR | PermX
		}
		page := make([]byte, PageSize)
		copy(page, content)
		if err := p.EAdd(e, va, perm, page); err != nil {
			t.Fatal(err)
		}
		for off := uint64(0); off < PageSize; off += EExtendChunk {
			if err := p.EExtend(e, va+off); err != nil {
				t.Fatal(err)
			}
		}
	}
	ss, err := SignEnclave(key, e.Measure(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EInit(e, ss); err != nil {
		t.Fatal(err)
	}
	return e
}

func onePage(content []byte) map[uint64][]byte {
	return map[uint64][]byte{base: content}
}

func TestECreateValidation(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	if _, err := p.ECreate(base+1, size, entry); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := p.ECreate(base, size+1, entry); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := p.ECreate(base, size, base-1); err == nil {
		t.Error("entry outside ELRANGE accepted")
	}
	if _, err := p.ECreate(base, 0, base); err == nil {
		t.Error("zero size accepted")
	}
}

func TestLifecycleAndMeasurement(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	e1 := buildEnclave(t, p, key, onePage([]byte("hello enclave")), nil)
	if !e1.Initialized() {
		t.Fatal("not initialized")
	}

	// Same content => same measurement.
	e2 := buildEnclave(t, p, key, onePage([]byte("hello enclave")), nil)
	if e1.MrEnclave != e2.MrEnclave {
		t.Error("measurement not deterministic")
	}

	// Different content => different measurement.
	e3 := buildEnclave(t, p, key, onePage([]byte("hello enclavf")), nil)
	if e1.MrEnclave == e3.MrEnclave {
		t.Error("measurement insensitive to content")
	}

	// Different permissions => different measurement.
	e4 := buildEnclave(t, p, key, onePage([]byte("hello enclave")),
		map[uint64]Perm{base: PermR | PermW | PermX})
	if e1.MrEnclave == e4.MrEnclave {
		t.Error("measurement insensitive to page permissions")
	}

	// Different entry => different measurement.
	e5, _ := p.ECreate(base, size, entry+8)
	pg := make([]byte, PageSize)
	copy(pg, "hello enclave")
	if err := p.EAdd(e5, base, PermR|PermX, pg); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < PageSize; off += EExtendChunk {
		if err := p.EExtend(e5, base+off); err != nil {
			t.Fatal(err)
		}
	}
	if e5.Measure() == e1.MrEnclave {
		t.Error("measurement insensitive to entry point")
	}
}

func TestEInitRejectsWrongMeasurement(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	e, _ := p.ECreate(base, size, entry)
	pg := make([]byte, PageSize)
	if err := p.EAdd(e, base, PermR|PermX, pg); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < PageSize; off += EExtendChunk {
		p.EExtend(e, base+off)
	}
	var wrong [32]byte
	wrong[0] = 0xAB
	ss, err := SignEnclave(key, wrong, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EInit(e, ss); err == nil {
		t.Fatal("EINIT accepted wrong measurement")
	}
	// Correct measurement but tampered signature.
	ss2, _ := SignEnclave(key, e.Measure(), 1, 1)
	ss2.Signature[0] ^= 1
	if err := p.EInit(e, ss2); err == nil {
		t.Fatal("EINIT accepted bad signature")
	}
	// Tampered field after signing.
	ss3, _ := SignEnclave(key, e.Measure(), 1, 1)
	ss3.ProdID = 99
	if err := p.EInit(e, ss3); err == nil {
		t.Fatal("EINIT accepted tampered SIGSTRUCT")
	}
	// And finally the honest path.
	ss4, _ := SignEnclave(key, e.Measure(), 1, 1)
	if err := p.EInit(e, ss4); err != nil {
		t.Fatal(err)
	}
}

func TestEAddRules(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	e := buildEnclave(t, p, key, onePage(nil), nil)
	pg := make([]byte, PageSize)
	if err := p.EAdd(e, base+PageSize, PermR, pg); err == nil {
		t.Error("EADD after EINIT accepted")
	}

	e2, _ := p.ECreate(base, size, entry)
	if err := p.EAdd(e2, base+4, PermR, pg); err == nil {
		t.Error("unaligned EADD accepted")
	}
	if err := p.EAdd(e2, base+size, PermR, pg); err == nil {
		t.Error("EADD outside ELRANGE accepted")
	}
	if err := p.EAdd(e2, base, PermR, pg[:100]); err == nil {
		t.Error("short page accepted")
	}
	if err := p.EAdd(e2, base, PermW, pg); err == nil {
		t.Error("unreadable page accepted")
	}
	if err := p.EAdd(e2, base, PermR, pg); err != nil {
		t.Fatal(err)
	}
	if err := p.EAdd(e2, base, PermR, pg); err == nil {
		t.Error("duplicate EADD accepted")
	}
}

func TestEPCExhaustionAndDestroy(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 4})
	e, _ := p.ECreate(base, size, entry)
	pg := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		if err := p.EAdd(e, base+uint64(i)*PageSize, PermR, pg); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EAdd(e, base+4*PageSize, PermR, pg); err == nil {
		t.Fatal("EPC exhaustion not detected")
	}
	if p.FreePages() != 0 {
		t.Errorf("free pages = %d", p.FreePages())
	}
	p.Destroy(e)
	if p.FreePages() != 4 {
		t.Errorf("free pages after destroy = %d", p.FreePages())
	}
}

func TestSealKeys(t *testing.T) {
	ca, p := testEnv(t, Config{EPCPages: 128})
	key := devKey(t)
	e1 := buildEnclave(t, p, key, onePage([]byte("A")), nil)
	e2 := buildEnclave(t, p, key, onePage([]byte("B")), nil)

	k1, err := p.EGetKeySeal(e1, KeyPolicyMrEnclave)
	if err != nil {
		t.Fatal(err)
	}
	k1b, _ := p.EGetKeySeal(e1, KeyPolicyMrEnclave)
	if !bytes.Equal(k1, k1b) {
		t.Error("seal key not stable")
	}
	k2, _ := p.EGetKeySeal(e2, KeyPolicyMrEnclave)
	if bytes.Equal(k1, k2) {
		t.Error("different enclaves share an MRENCLAVE seal key")
	}
	s1, _ := p.EGetKeySeal(e1, KeyPolicyMrSigner)
	s2, _ := p.EGetKeySeal(e2, KeyPolicyMrSigner)
	if !bytes.Equal(s1, s2) {
		t.Error("same signer should share the MRSIGNER seal key")
	}

	// A different platform derives different keys for the same enclave.
	p2, err := NewPlatform(Config{EPCPages: 64}, ca)
	if err != nil {
		t.Fatal(err)
	}
	e3 := buildEnclave(t, p2, key, onePage([]byte("A")), nil)
	k3, _ := p2.EGetKeySeal(e3, KeyPolicyMrEnclave)
	if bytes.Equal(k1, k3) {
		t.Error("seal keys identical across platforms")
	}

	// Uninitialized enclave cannot get keys.
	e4, _ := p.ECreate(base, size, entry)
	if _, err := p.EGetKeySeal(e4, KeyPolicyMrEnclave); err == nil {
		t.Error("EGETKEY before EINIT accepted")
	}
}

func TestLocalAttestation(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 128})
	key := devKey(t)
	prover := buildEnclave(t, p, key, onePage([]byte("prover")), nil)
	verifier := buildEnclave(t, p, key, onePage([]byte("verifier")), nil)

	var data [ReportDataSize]byte
	copy(data[:], "channel binding")
	r, err := p.EReport(prover, verifier.MrEnclave, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyReport(verifier, r); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The prover cannot verify a report targeted at the verifier.
	if err := p.VerifyReport(prover, r); err == nil {
		t.Error("report accepted by wrong enclave")
	}
	// Tampering breaks the MAC.
	r.Data[0] ^= 1
	if err := p.VerifyReport(verifier, r); err == nil {
		t.Error("tampered report accepted")
	}
}

func TestRemoteAttestationQuote(t *testing.T) {
	ca, p := testEnv(t, Config{EPCPages: 128})
	key := devKey(t)
	e := buildEnclave(t, p, key, onePage([]byte("attest me")), nil)

	var data [ReportDataSize]byte
	copy(data[:], "session key hash")
	r, err := p.EReport(e, QETargetInfo(), data)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.QuoteReport(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(ca.PublicKey(), q); err != nil {
		t.Fatalf("verify quote: %v", err)
	}
	if q.MrEnclave != e.MrEnclave || q.Data != data {
		t.Error("quote does not carry the enclave identity/data")
	}

	// Quote verification fails against the wrong CA.
	otherCA, _ := NewCA()
	if err := VerifyQuote(otherCA.PublicKey(), q); err == nil {
		t.Error("quote accepted under wrong CA")
	}
	// Tampered quote body fails.
	q.MrEnclave[0] ^= 1
	if err := VerifyQuote(ca.PublicKey(), q); err == nil {
		t.Error("tampered quote accepted")
	}
	// Reports not targeted at the QE are refused.
	r2, _ := p.EReport(e, e.MrEnclave, data)
	if _, err := p.QuoteReport(r2); err == nil {
		t.Error("QE quoted a report not targeted at it")
	}
	// Forged report MAC is refused by the QE.
	r3, _ := p.EReport(e, QETargetInfo(), data)
	r3.MrEnclave[0] ^= 1
	if _, err := p.QuoteReport(r3); err == nil {
		t.Error("QE quoted a forged report")
	}
}

func TestAddressSpacePermissions(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 128})
	key := devKey(t)

	// Page 0: RX "code" (a halt); page 1: RW data; page 2: R only.
	code := make([]byte, PageSize)
	code[0] = byte(evm.HALT)
	pages := map[uint64][]byte{
		base:              []byte(string(code)),
		base + PageSize:   []byte("data page"),
		base + 2*PageSize: []byte("rodata page"),
	}
	perms := map[uint64]Perm{
		base:              PermR | PermX,
		base + PageSize:   PermR | PermW,
		base + 2*PageSize: PermR,
	}
	e := buildEnclave(t, p, key, pages, perms)
	as := &AddressSpace{Enclave: e, Untrusted: evm.NewFlatMem(0x1000, 64<<10)}

	// Exec from the RX page works.
	var b [1]byte
	if f := as.Fetch(base, b[:]); f != nil {
		t.Fatalf("fetch from RX page: %v", f)
	}
	// Exec from the RW page faults.
	if f := as.Fetch(base+PageSize, b[:]); f == nil || f.Kind != evm.FaultExecPerm {
		t.Errorf("fetch from RW page: %v", f)
	}
	// Exec outside ELRANGE faults.
	if f := as.Fetch(0x2000, b[:]); f == nil || f.Kind != evm.FaultExecPerm {
		t.Errorf("fetch outside ELRANGE: %v", f)
	}
	// Write to the RW page works.
	if f := as.Store(base+PageSize, 8, 0x1122334455667788); f != nil {
		t.Fatalf("store to RW page: %v", f)
	}
	v, f := as.Load(base+PageSize, 8)
	if f != nil || v != 0x1122334455667788 {
		t.Fatalf("load back: %v %#x", f, v)
	}
	// Write to the RX page faults: this is exactly why the sanitizer must
	// set PF_W on the text segment.
	if f := as.Store(base, 8, 1); f == nil || f.Kind != evm.FaultWritePerm {
		t.Errorf("store to RX page: %v", f)
	}
	// Write to the R page faults.
	if f := as.Store(base+2*PageSize, 1, 1); f == nil || f.Kind != evm.FaultWritePerm {
		t.Errorf("store to R page: %v", f)
	}
	// Access spanning two pages (RW boundary would need both W).
	if f := as.Store(base+2*PageSize-4, 8, 0); f == nil {
		t.Error("store spanning RW->R boundary accepted")
	}
	// Load spanning R pages is fine.
	if _, f := as.Load(base+PageSize+PageSize-4, 8); f != nil {
		t.Errorf("load spanning pages: %v", f)
	}
	// Unmapped enclave page faults.
	if _, f := as.Load(base+5*PageSize, 8); f == nil || f.Kind != evm.FaultBadAddress {
		t.Errorf("unmapped page: %v", f)
	}
	// Untrusted memory is reachable for data.
	if f := as.Store(0x2000, 8, 42); f != nil {
		t.Fatalf("untrusted store: %v", f)
	}
	if v, _ := as.Load(0x2000, 8); v != 42 {
		t.Errorf("untrusted load = %d", v)
	}
}

func TestHostAbortPageSemantics(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	e := buildEnclave(t, p, key, onePage([]byte("secret bytes")), nil)
	got := p.HostRead(e, base, 8)
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("host read of EPC returned %x, want abort semantics", got)
		}
	}
}

func TestMEEDRAMCiphertext(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	secret := []byte("super secret enclave content 1234567890")
	e := buildEnclave(t, p, key, onePage(secret), nil)
	dump, err := p.DumpDRAM(e, base)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(dump, secret) {
		t.Error("DRAM dump contains plaintext enclave content")
	}
	if len(dump) != PageSize {
		t.Errorf("dump size = %d", len(dump))
	}
	// Encrypted at rest differs across platforms (fresh MEE keys).
	ca2, _ := NewCA()
	p2, _ := NewPlatform(Config{EPCPages: 64}, ca2)
	e2 := buildEnclave(t, p2, key, onePage(secret), nil)
	dump2, _ := p2.DumpDRAM(e2, base)
	if bytes.Equal(dump, dump2) {
		t.Error("identical ciphertext across platforms")
	}
}

func TestEModPR(t *testing.T) {
	_, p1 := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)
	perms := map[uint64]Perm{base: PermR | PermW | PermX}
	e1 := buildEnclave(t, p1, key, onePage(nil), perms)
	if err := p1.EModPR(e1, base, PermR|PermX); err == nil {
		t.Error("EMODPR worked on SGXv1")
	}

	_, p2 := testEnv(t, Config{EPCPages: 64, SGX2: true})
	e2 := buildEnclave(t, p2, key, onePage(nil), perms)
	if err := p2.EModPR(e2, base, PermR|PermX); err != nil {
		t.Fatalf("EMODPR restrict: %v", err)
	}
	if perm, _ := e2.PagePerm(base); perm != PermR|PermX {
		t.Errorf("perm after EMODPR = %v", perm)
	}
	// Extending back to writable must fail.
	if err := p2.EModPR(e2, base, PermR|PermW|PermX); err == nil {
		t.Error("EMODPR extended permissions")
	}
}
