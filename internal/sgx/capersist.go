package sgx

import (
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
)

// SaveCA persists the CA's private key as PEM (EC PRIVATE KEY). The CLI
// tools use this so a "machine" keeps the same root of trust across runs —
// letting the authentication server run in a separate process.
func (ca *CA) Save(path string) error {
	der, err := x509.MarshalECPrivateKey(ca.key)
	if err != nil {
		return fmt.Errorf("sgx: encoding CA key: %w", err)
	}
	blob := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der})
	return os.WriteFile(path, blob, 0o600)
}

// LoadCA reads a CA saved with Save.
func LoadCA(path string) (*CA, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(blob)
	if block == nil {
		return nil, fmt.Errorf("sgx: %s is not PEM", path)
	}
	key, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("sgx: parsing CA key: %w", err)
	}
	return &CA{key: key}, nil
}

// LoadOrCreateCA loads the CA at path, creating and persisting a fresh one
// when the file does not exist.
func LoadOrCreateCA(path string) (*CA, error) {
	if _, err := os.Stat(path); err == nil {
		return LoadCA(path)
	}
	ca, err := NewCA()
	if err != nil {
		return nil, err
	}
	if err := ca.Save(path); err != nil {
		return nil, err
	}
	return ca, nil
}
