package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

// Enclave is one enclave instance (SECS + its EPC pages).
type Enclave struct {
	platform *Platform

	Base  uint64 // ELRANGE start (page aligned)
	Size  uint64 // ELRANGE size (page aligned)
	Entry uint64 // single architectural entry point (TCS entry)

	pages map[uint64]*epcPage

	mrHash      hash.Hash // running measurement (SHA-256 chained)
	MrEnclave   [32]byte  // final measurement, fixed at EINIT
	MrSigner    [32]byte  // SHA-256 of the signer's modulus, fixed at EINIT
	initialized bool
	destroyed   bool

	// codeVersion increases whenever executable enclave memory may have
	// changed (writes to X pages, EMODPR); the VM's decoded-instruction
	// cache keys on it, keeping self-modifying code correct.
	codeVersion uint64
}

// Initialized reports whether EINIT has succeeded.
func (e *Enclave) Initialized() bool { return e.initialized }

// ECreate allocates a new enclave with the given linear range and entry
// point. The range geometry and entry are measured.
func (p *Platform) ECreate(base, size, entry uint64) (*Enclave, error) {
	if base%PageSize != 0 || size%PageSize != 0 || size == 0 {
		return nil, fmt.Errorf("sgx: ECREATE: unaligned ELRANGE %#x+%#x", base, size)
	}
	if entry < base || entry >= base+size {
		return nil, fmt.Errorf("sgx: ECREATE: entry %#x outside ELRANGE", entry)
	}
	e := &Enclave{
		platform: p,
		Base:     base,
		Size:     size,
		Entry:    entry,
		pages:    make(map[uint64]*epcPage),
		mrHash:   sha256.New(),
	}
	var rec [8 + 8 + 8 + 8]byte
	copy(rec[:], "ECREATE\x00")
	binary.LittleEndian.PutUint64(rec[8:], size)
	binary.LittleEndian.PutUint64(rec[16:], entry-base)
	e.mrHash.Write(rec[:])
	return e, nil
}

// EAdd copies one 4 KiB source page into a fresh EPC page at vaddr with the
// given EPCM permissions. The page's offset and permissions are measured;
// its *contents* are measured separately by EEXTEND, 256 bytes at a time.
func (p *Platform) EAdd(e *Enclave, vaddr uint64, perm Perm, src []byte) error {
	if e.initialized {
		return fmt.Errorf("sgx: EADD after EINIT")
	}
	if e.destroyed {
		return fmt.Errorf("sgx: EADD on destroyed enclave")
	}
	if vaddr%PageSize != 0 {
		return fmt.Errorf("sgx: EADD: unaligned vaddr %#x", vaddr)
	}
	if vaddr < e.Base || vaddr+PageSize > e.Base+e.Size {
		return fmt.Errorf("sgx: EADD: vaddr %#x outside ELRANGE", vaddr)
	}
	if len(src) != PageSize {
		return fmt.Errorf("sgx: EADD: source must be exactly one page")
	}
	if _, dup := e.pages[vaddr]; dup {
		return fmt.Errorf("sgx: EADD: page %#x already added", vaddr)
	}
	if perm&PermR == 0 {
		return fmt.Errorf("sgx: EADD: page must be readable")
	}
	pg, err := p.allocPage()
	if err != nil {
		return err
	}
	copy(pg.data[:], src)
	pg.vaddr = vaddr
	pg.perm = perm
	pg.enclave = e
	pg.valid = true
	e.pages[vaddr] = pg

	var rec [24]byte
	copy(rec[:], "EADD\x00\x00\x00\x00")
	binary.LittleEndian.PutUint64(rec[8:], vaddr-e.Base)
	binary.LittleEndian.PutUint64(rec[16:], uint64(perm))
	e.mrHash.Write(rec[:])
	return nil
}

// EExtendChunk is the number of bytes one EEXTEND measures.
const EExtendChunk = 256

// EExtend measures 256 bytes of an added page into the enclave measurement.
// The SDK loader invokes it 16 times to cover a full page.
func (p *Platform) EExtend(e *Enclave, vaddr uint64) error {
	if e.initialized {
		return fmt.Errorf("sgx: EEXTEND after EINIT")
	}
	if vaddr%EExtendChunk != 0 {
		return fmt.Errorf("sgx: EEXTEND: vaddr %#x not 256-byte aligned", vaddr)
	}
	pg, ok := e.pages[vaddr&^uint64(PageSize-1)]
	if !ok {
		return fmt.Errorf("sgx: EEXTEND: no page at %#x", vaddr)
	}
	var rec [16]byte
	copy(rec[:], "EEXTEND\x00")
	binary.LittleEndian.PutUint64(rec[8:], vaddr-e.Base)
	e.mrHash.Write(rec[:])
	off := vaddr & (PageSize - 1)
	e.mrHash.Write(pg.data[off : off+EExtendChunk])
	return nil
}

// Measure returns the current measurement value without finalizing it
// (useful to the signing tool, which must predict MRENCLAVE).
func (e *Enclave) Measure() [32]byte {
	var out [32]byte
	copy(out[:], e.mrHash.Sum(nil))
	return out
}

// EInit verifies the SIGSTRUCT and, if its measurement matches the enclave's
// computed measurement, marks the enclave initialized. After EINIT no pages
// can be added or measured, and the enclave becomes enterable.
func (p *Platform) EInit(e *Enclave, ss *SigStruct) error {
	if e.initialized {
		return fmt.Errorf("sgx: EINIT: already initialized")
	}
	if err := ss.Verify(); err != nil {
		return fmt.Errorf("sgx: EINIT: %w", err)
	}
	m := e.Measure()
	//elide:vet-ignore constanttime EINIT launch check; the measurement is public and computable from the shipped binary
	if m != ss.MrEnclave {
		return fmt.Errorf("sgx: EINIT: measurement mismatch: enclave %x, sigstruct %x", m[:8], ss.MrEnclave[:8])
	}
	e.MrEnclave = m
	e.MrSigner = ss.MrSignerValue()
	e.initialized = true
	return nil
}

// EModPR restricts (never extends) the permissions of an initialized
// enclave's page — the SGXv2 mechanism the paper points to for revoking W
// from the text section after restoration. Only available on SGX2 platforms.
func (p *Platform) EModPR(e *Enclave, vaddr uint64, perm Perm) error {
	if !p.cfg.SGX2 {
		return fmt.Errorf("sgx: EMODPR: not supported on SGXv1 (permissions are fixed at EADD)")
	}
	if !e.initialized {
		return fmt.Errorf("sgx: EMODPR before EINIT")
	}
	pg, ok := e.pages[vaddr&^uint64(PageSize-1)]
	if !ok {
		return fmt.Errorf("sgx: EMODPR: no page at %#x", vaddr)
	}
	if perm&^pg.perm != 0 {
		return fmt.Errorf("sgx: EMODPR: cannot extend permissions %v -> %v", pg.perm, perm)
	}
	pg.perm = perm
	e.codeVersion++
	return nil
}

// PagePerm returns the EPCM permissions of the page containing vaddr.
func (e *Enclave) PagePerm(vaddr uint64) (Perm, bool) {
	pg, ok := e.pages[vaddr&^uint64(PageSize-1)]
	if !ok {
		return 0, false
	}
	return pg.perm, true
}

// Destroy returns all the enclave's pages to the EPC pool.
func (p *Platform) Destroy(e *Enclave) {
	if e.destroyed {
		return
	}
	for _, pg := range e.pages {
		p.freePage(pg)
	}
	e.pages = nil
	e.destroyed = true
	e.initialized = false
}

// --- key derivation (EGETKEY) ---

// KeyPolicy selects what identity a sealing key binds to.
type KeyPolicy int

const (
	// KeyPolicyMrEnclave binds the key to the exact enclave measurement.
	KeyPolicyMrEnclave KeyPolicy = iota
	// KeyPolicyMrSigner binds the key to the signing authority, surviving
	// enclave upgrades.
	KeyPolicyMrSigner
)

// EGetKeySeal derives the enclave's 128-bit sealing key. Callable only from
// an initialized enclave (the SDK exposes it via sgx_get_seal_key).
func (p *Platform) EGetKeySeal(e *Enclave, policy KeyPolicy) ([]byte, error) {
	if !e.initialized {
		return nil, fmt.Errorf("sgx: EGETKEY before EINIT")
	}
	switch policy {
	case KeyPolicyMrEnclave:
		return p.deriveKey("seal-mrenclave", e.MrEnclave[:]), nil
	case KeyPolicyMrSigner:
		return p.deriveKey("seal-mrsigner", e.MrSigner[:]), nil
	default:
		return nil, fmt.Errorf("sgx: EGETKEY: unknown policy %d", policy)
	}
}

// reportKey derives the key used to MAC reports targeted at the enclave
// with the given measurement.
func (p *Platform) reportKey(target [32]byte) []byte {
	return p.deriveKey("report", target[:])
}
