package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
)

// meeEncrypt models the Memory Encryption Engine's at-rest protection of
// EPC pages: AES-CTR under the boot-time MEE key with a nonce derived from
// the page's physical placement (we use its virtual address — the model has
// no separate physical map). The CPU decrypts transparently on access, so
// the VM never sees ciphertext; DumpDRAM uses this to show what a bus
// probe would observe.
func meeEncrypt(key [32]byte, vaddr uint64, plain []byte) []byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic("sgx: MEE cipher: " + err.Error()) // 32-byte key cannot fail
	}
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv, vaddr)
	out := make([]byte, len(plain))
	cipher.NewCTR(block, iv).XORKeyStream(out, plain)
	return out
}
