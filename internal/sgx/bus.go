package sgx

import (
	"encoding/binary"

	"sgxelide/internal/evm"
)

// AddressSpace is the memory bus an EVM thread sees while executing inside
// an enclave: the enclave linear range (ELRANGE) backed by EPCM-checked EPC
// pages, plus ordinary untrusted application memory, which enclave code may
// read and write (as on real SGX) but never execute.
type AddressSpace struct {
	Enclave   *Enclave
	Untrusted *evm.FlatMem

	// PageTrace, when non-nil, receives the page-granular access sequence
	// of enclave execution — the controlled-channel observation a malicious
	// OS makes through page-fault manipulation (Xu et al., Oakland'15).
	// Page contents are never exposed, only (page number, access kind),
	// exactly the attacker's view the paper's §7 discusses.
	PageTrace func(page uint64, kind evm.Access)

	// One-entry TLB over the EPCM page map. Safe because pages are never
	// remapped while an enclave is live (permission restriction via EMODPR
	// mutates the cached page in place).
	tlbBase uint64
	tlbPage *epcPage
}

// lookupPage resolves the EPC page containing base (page aligned).
func (a *AddressSpace) lookupPage(base uint64) (*epcPage, bool) {
	if a.tlbPage != nil && a.tlbBase == base {
		return a.tlbPage, true
	}
	pg, ok := a.Enclave.pages[base]
	if ok {
		a.tlbBase, a.tlbPage = base, pg
	}
	return pg, ok
}

var _ evm.Bus = (*AddressSpace)(nil)
var _ evm.CodeVersioner = (*AddressSpace)(nil)

// CodeVersion implements evm.CodeVersioner: the VM may cache decoded
// instructions of a page until that page's executable bytes change.
// Unmapped pages report the enclave-wide epoch (EMODPR bumps it), which
// also covers permission restrictions on mapped pages because the epoch is
// folded into every page's reported version.
func (a *AddressSpace) CodeVersion(addr uint64) uint64 {
	pg, ok := a.lookupPage(addr &^ uint64(PageSize-1))
	if !ok {
		return a.Enclave.codeVersion
	}
	return pg.writeGen + a.Enclave.codeVersion<<32
}

// inELRange reports whether addr falls inside the enclave linear range.
func (a *AddressSpace) inELRange(addr uint64) bool {
	e := a.Enclave
	return addr >= e.Base && addr < e.Base+e.Size
}

// access performs an enclave memory access with EPCM permission checks.
// The fast path handles accesses within a single page; accesses may legally
// span page boundaries (as the restorer's copy loop does), handled by the
// byte-wise slow path.
func (a *AddressSpace) access(addr uint64, buf []byte, kind evm.Access, write bool) *evm.Fault {
	var need Perm
	switch kind {
	case evm.Read:
		need = PermR
	case evm.Write:
		need = PermW
	default:
		need = PermX
	}
	base := addr &^ uint64(PageSize-1)
	if a.PageTrace != nil {
		for p := base; p <= (addr+uint64(len(buf))-1)&^uint64(PageSize-1); p += PageSize {
			a.PageTrace(p/PageSize, kind)
		}
	}
	if (addr+uint64(len(buf))-1)&^uint64(PageSize-1) == base {
		pg, ok := a.lookupPage(base)
		if !ok {
			return &evm.Fault{Kind: evm.FaultBadAddress, Addr: addr, Msg: "unmapped enclave page"}
		}
		if pg.perm&need == 0 {
			return &evm.Fault{
				Kind: permFaultKind(kind), Addr: addr,
				Msg: "EPCM permissions " + pg.perm.String(),
			}
		}
		off := addr & (PageSize - 1)
		if write {
			if pg.perm&PermX != 0 {
				pg.writeGen++
			}
			copy(pg.data[off:], buf)
		} else {
			copy(buf, pg.data[off:])
		}
		return nil
	}
	for i := range buf {
		va := addr + uint64(i)
		pg, ok := a.lookupPage(va &^ uint64(PageSize-1))
		if !ok {
			return &evm.Fault{Kind: evm.FaultBadAddress, Addr: va, Msg: "unmapped enclave page"}
		}
		if pg.perm&need == 0 {
			return &evm.Fault{
				Kind: permFaultKind(kind), Addr: va,
				Msg: "EPCM permissions " + pg.perm.String(),
			}
		}
		off := va & (PageSize - 1)
		if write {
			if pg.perm&PermX != 0 {
				pg.writeGen++
			}
			pg.data[off] = buf[i]
		} else {
			buf[i] = pg.data[off]
		}
	}
	return nil
}

func permFaultKind(kind evm.Access) evm.FaultKind {
	switch kind {
	case evm.Read:
		return evm.FaultReadPerm
	case evm.Write:
		return evm.FaultWritePerm
	default:
		return evm.FaultExecPerm
	}
}

// Fetch implements evm.Bus. Instruction fetches must come from executable
// enclave pages; enclave threads cannot execute untrusted memory.
func (a *AddressSpace) Fetch(addr uint64, dst []byte) *evm.Fault {
	if !a.inELRange(addr) {
		return &evm.Fault{Kind: evm.FaultExecPerm, Addr: addr, Msg: "fetch outside ELRANGE"}
	}
	return a.access(addr, dst, evm.Exec, false)
}

// Load implements evm.Bus.
func (a *AddressSpace) Load(addr uint64, n int) (uint64, *evm.Fault) {
	if a.inELRange(addr) {
		var buf [8]byte
		if f := a.access(addr, buf[:n], evm.Read, false); f != nil {
			return 0, f
		}
		return leLoad(buf[:n]), nil
	}
	return a.Untrusted.Load(addr, n)
}

// Store implements evm.Bus.
func (a *AddressSpace) Store(addr uint64, n int, v uint64) *evm.Fault {
	if a.inELRange(addr) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		return a.access(addr, buf[:n], evm.Write, true)
	}
	return a.Untrusted.Store(addr, n, v)
}

func leLoad(b []byte) uint64 {
	var buf [8]byte
	copy(buf[:], b)
	return binary.LittleEndian.Uint64(buf[:])
}

// EnclaveReadBytes copies out enclave memory on behalf of *enclave* code
// (intrinsics modeling statically linked library routines). Requires R.
func (a *AddressSpace) EnclaveReadBytes(addr uint64, n int) ([]byte, *evm.Fault) {
	out := make([]byte, n)
	if a.inELRange(addr) {
		if f := a.access(addr, out, evm.Read, false); f != nil {
			return nil, f
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		v, f := a.Untrusted.Load(addr+uint64(i), 1)
		if f != nil {
			return nil, f
		}
		out[i] = byte(v)
	}
	return out, nil
}

// EnclaveWriteBytes writes enclave (or untrusted) memory on behalf of
// enclave code. Requires W on enclave pages.
func (a *AddressSpace) EnclaveWriteBytes(addr uint64, data []byte) *evm.Fault {
	if a.inELRange(addr) {
		return a.access(addr, data, evm.Write, true)
	}
	for i, b := range data {
		if f := a.Untrusted.Store(addr+uint64(i), 1, uint64(b)); f != nil {
			return f
		}
	}
	return nil
}
