package sgx

import (
	"testing"

	"sgxelide/internal/evm"
)

// TestSelfModificationInvalidatesICache is the correctness condition the
// decoded-instruction cache must honor for SgxElide to work at all: after
// enclave code overwrites an already-executed instruction, the next
// execution must see the new bytes, not a stale decode.
func TestSelfModificationInvalidatesICache(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 64})
	key := devKey(t)

	// Page content: movi r0, 1; eexit 0 — with RWX permissions (the
	// sanitized-text situation).
	code := Inst2Bytes(
		evm.Inst{Op: evm.MOVI, Rd: 0, U64: 1},
		evm.Inst{Op: evm.EEXIT, Imm: 0},
	)
	page := make([]byte, PageSize)
	copy(page, code)
	e := buildEnclave(t, p, key, map[uint64][]byte{base: page},
		map[uint64]Perm{base: PermR | PermW | PermX})

	as := &AddressSpace{Enclave: e, Untrusted: evm.NewFlatMem(0x1000, 4096)}
	m := evm.New(as)
	m.MaxSteps = 1000

	run := func() uint64 {
		m.PC = base
		m.SetSP(0x1000 + 4096)
		stop := m.Run()
		if stop.Reason != evm.StopExit {
			t.Fatalf("stop = %v", stop)
		}
		return m.Reg[0]
	}

	if got := run(); got != 1 {
		t.Fatalf("first run: r0 = %d", got)
	}
	// The instruction is now cached. Patch the immediate (an enclave-mode
	// write to an X page) and re-run: the VM must decode the new bytes.
	patched := Inst2Bytes(evm.Inst{Op: evm.MOVI, Rd: 0, U64: 2})
	if f := as.EnclaveWriteBytes(base, patched); f != nil {
		t.Fatal(f)
	}
	if got := run(); got != 2 {
		t.Fatalf("after self-modification: r0 = %d, want 2 (stale icache?)", got)
	}
	// And once more through the byte-wise (page-spanning) write path.
	patched2 := Inst2Bytes(evm.Inst{Op: evm.MOVI, Rd: 0, U64: 3})
	for i, b := range patched2 {
		if f := as.EnclaveWriteBytes(base+uint64(i), []byte{b}); f != nil {
			t.Fatal(f)
		}
	}
	if got := run(); got != 3 {
		t.Fatalf("after byte-wise self-modification: r0 = %d, want 3", got)
	}
}

// Inst2Bytes encodes instructions (test helper).
func Inst2Bytes(insts ...evm.Inst) []byte {
	var out []byte
	for _, in := range insts {
		out = in.Encode(out)
	}
	return out
}
