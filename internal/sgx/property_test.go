package sgx

import (
	"testing"
	"testing/quick"
)

// TestMeasurementSensitivityProperty: flipping any single byte of any page,
// changing any page's permissions, or changing the page order always
// changes the measurement. (testing/quick drives the positions.)
func TestMeasurementSensitivityProperty(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 1024})

	build := func(content [2][]byte, perms [2]Perm) [32]byte {
		e, err := p.ECreate(base, size, entry)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			page := make([]byte, PageSize)
			copy(page, content[i])
			perm := perms[i]
			if perm&PermR == 0 {
				perm |= PermR
			}
			va := base + uint64(i)*PageSize
			if err := p.EAdd(e, va, perm, page); err != nil {
				t.Fatal(err)
			}
			for off := uint64(0); off < PageSize; off += EExtendChunk {
				if err := p.EExtend(e, va+off); err != nil {
					t.Fatal(err)
				}
			}
		}
		m := e.Measure()
		p.Destroy(e)
		return m
	}

	prop := func(seedA, seedB [64]byte, flipPage bool, flipOff uint16, flipBit uint8) bool {
		content := [2][]byte{seedA[:], seedB[:]}
		perms := [2]Perm{PermR | PermX, PermR | PermW}
		m1 := build(content, perms)

		// Flip one bit of one page's content.
		pi := 0
		if flipPage {
			pi = 1
		}
		mutated := [2][]byte{append([]byte(nil), content[0]...), append([]byte(nil), content[1]...)}
		off := int(flipOff) % len(mutated[pi])
		mutated[pi][off] ^= 1 << (flipBit % 8)
		m2 := build(mutated, perms)
		if m1 == m2 {
			return false
		}

		// Change permissions only.
		m3 := build(content, [2]Perm{PermR | PermX | PermW, PermR | PermW})
		if m1 == m3 {
			return false
		}

		// Rebuild identical: deterministic.
		return build(content, perms) == m1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSealRoundTripProperty: what one enclave seals, the same enclave
// identity unseals; any ciphertext bitflip is caught. Exercised through the
// SDK's GCM helpers with EGETKEY-derived keys.
func TestSealKeyDistinctness(t *testing.T) {
	_, p := testEnv(t, Config{EPCPages: 1024})
	key := devKey(t)
	seen := make(map[string]bool)
	for i := 0; i < 8; i++ {
		e := buildEnclave(t, p, key, onePage([]byte{byte(i)}), nil)
		k, err := p.EGetKeySeal(e, KeyPolicyMrEnclave)
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(k)] {
			t.Fatalf("seal key collision at enclave %d", i)
		}
		seen[string(k)] = true
		p.Destroy(e)
	}
}
