// evmcc drives the enclave toolchain: it compiles mini-C and EVM assembly
// sources and links them into an ELF image — either a standalone bare
// program (default) or an SGX enclave shared object (-enclave, with -edl).
//
//	evmcc -o prog.elf main.c util.s
//	evmcc -enclave -edl app.edl -o enclave.so trusted.c
//	evmcc -enclave -elide -edl app.edl -o enclave.so trusted.c   # + SgxElide runtime
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sgxelide/internal/edl"
	"sgxelide/internal/elf"
	"sgxelide/internal/elide"
	"sgxelide/internal/link"
	"sgxelide/internal/sdk"
)

func main() {
	var (
		out      = flag.String("o", "a.elf", "output file")
		enclave  = flag.Bool("enclave", false, "build an enclave shared object")
		withEDL  = flag.String("edl", "", "EDL interface file (enclave mode)")
		useElide = flag.Bool("elide", false, "link the SgxElide runtime (enclave mode)")
		base     = flag.Uint64("base", 0, "image base address (default toolchain choice)")
		heap     = flag.Uint64("heap", 0, "heap reservation in bytes")
		stack    = flag.Uint64("stack", 0, "stack reservation in bytes")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "evmcc: no input files")
		os.Exit(2)
	}

	var sources []sdk.Source
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		name := filepath.Base(path)
		switch {
		case strings.HasSuffix(name, ".c"):
			sources = append(sources, sdk.C(name, string(text)))
		case strings.HasSuffix(name, ".s"):
			sources = append(sources, sdk.Asm(name, string(text)))
		default:
			fatal(fmt.Errorf("evmcc: %s: unknown source type (want .c or .s)", path))
		}
	}

	var elfBytes []byte
	if *enclave {
		var iface *edl.Interface
		var err error
		if *withEDL == "" {
			fatal(fmt.Errorf("evmcc: -enclave requires -edl"))
		}
		edlText, err := os.ReadFile(*withEDL)
		if err != nil {
			fatal(err)
		}
		if *useElide {
			iface, err = elide.MergeEDL(string(edlText))
			if err != nil {
				fatal(err)
			}
			sources = append(elide.TrustedSources(), sources...)
		} else {
			iface, err = edl.Parse(string(edlText))
			if err != nil {
				fatal(err)
			}
		}
		res, err := sdk.BuildEnclave(sdk.BuildConfig{Base: *base, HeapSize: *heap, StackSize: *stack}, iface, sources...)
		if err != nil {
			fatal(err)
		}
		elfBytes = res.ELF
	} else {
		im, err := sdk.BuildBare(link.Config{Base: *base, HeapSize: *heap, StackSize: *stack}, sources...)
		if err != nil {
			fatal(err)
		}
		elfBytes = elf.Write(im)
	}

	if err := os.WriteFile(*out, elfBytes, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("evmcc: wrote %s (%d bytes)\n", *out, len(elfBytes))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
