// elide-sign is the enclave signing tool (sgx_sign): it predicts the
// enclave measurement by replaying the measured-load sequence, then signs
// a SIGSTRUCT with the developer's RSA key. In the SgxElide flow it runs on
// the *sanitized* enclave — the identity the authentication server expects.
//
//	elide-sign -key dev.pem -o enclave.sigstruct sanitized.so
//
// A missing key file is created (RSA-3072, like the SGX SDK's default).
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/gob"
	"encoding/hex"
	"encoding/pem"
	"flag"
	"fmt"
	"os"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

func main() {
	var (
		keyPath = flag.String("key", "dev_signing_key.pem", "RSA signing key (created if missing)")
		out     = flag.String("o", "enclave.sigstruct", "output SIGSTRUCT file")
		prodID  = flag.Uint("prodid", 1, "ISV product id")
		svn     = flag.Uint("svn", 1, "ISV security version number")
		bits    = flag.Int("bits", 3072, "key size when generating a new key")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: elide-sign -key dev.pem -o enclave.sigstruct enclave.so")
		os.Exit(2)
	}

	key, err := loadOrCreateKey(*keyPath, *bits)
	if err != nil {
		fatal(err)
	}

	elfBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// Measurement does not depend on platform secrets: any platform
	// replays the same ECREATE/EADD/EEXTEND sequence.
	ca, err := sgx.NewCA()
	if err != nil {
		fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	if err != nil {
		fatal(err)
	}
	mr, err := sdk.MeasureELF(sdk.NewHost(platform), elfBytes)
	if err != nil {
		fatal(err)
	}
	ss, err := sgx.SignEnclave(key, mr, uint16(*prodID), uint16(*svn))
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(ss); err != nil {
		fatal(err)
	}
	// Close errors after a write can mean lost data; a signature file that
	// did not durably land is a fatal outcome for a signing tool.
	if err := f.Close(); err != nil {
		fatal(err)
	}
	signer := ss.MrSignerValue()
	fmt.Printf("elide-sign: %s\n", flag.Arg(0))
	fmt.Printf("  MRENCLAVE: %s\n", hex.EncodeToString(mr[:]))
	fmt.Printf("  MRSIGNER:  %s\n", hex.EncodeToString(signer[:]))
	fmt.Printf("  wrote %s\n", *out)
}

// loadOrCreateKey reads a PKCS#1 RSA key, generating one when absent.
func loadOrCreateKey(path string, bits int) (*rsa.PrivateKey, error) {
	if blob, err := os.ReadFile(path); err == nil {
		block, _ := pem.Decode(blob)
		if block == nil {
			return nil, fmt.Errorf("%s is not PEM", path)
		}
		return x509.ParsePKCS1PrivateKey(block.Bytes)
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	blob := pem.EncodeToMemory(&pem.Block{
		Type:  "RSA PRIVATE KEY",
		Bytes: x509.MarshalPKCS1PrivateKey(key),
	})
	if err := os.WriteFile(path, blob, 0o600); err != nil {
		return nil, err
	}
	fmt.Printf("elide-sign: generated new %d-bit signing key at %s\n", bits, path)
	return key, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
