// elide-run is the user-machine side of the SgxElide CLI flow: it loads a
// sanitized, signed enclave on a simulated SGX platform, connects the
// SgxElide untrusted runtime to the authentication server (TCP or
// in-process), performs the restore, and optionally invokes an ecall.
//
// Full two-process walkthrough:
//
//	evmcc -enclave -elide -edl app.edl -o enclave.so app.c
//	elide-whitelist -o whitelist.json
//	elide-sanitize -whitelist whitelist.json -o build enclave.so
//	elide-sign -key dev.pem -o build/enclave.sigstruct build/sanitized.so
//	elide-run -dir build -edl app.edl -ca machine_ca.pem -emit-server serverfiles
//	elide-server -dir serverfiles -listen 127.0.0.1:7788 &
//	elide-run -dir build -edl app.edl -ca machine_ca.pem -connect 127.0.0.1:7788 \
//	          -ecall ecall_compute -arg 42
//
// The -ca file pins the machine's attestation root across invocations so
// the server started from the emitted files trusts this machine's quotes.
//
// For availability, run several elide-server replicas from the same emitted
// directory and hand the whole fleet to -servers; the runtime circuit-breaks
// dead endpoints, re-attests on failover, and retries whole protocol runs:
//
//	elide-server -dir serverfiles -listen 127.0.0.1:7788 &
//	elide-server -dir serverfiles -listen 127.0.0.1:7789 &
//	elide-run -dir build -edl app.edl -ca machine_ca.pem \
//	          -servers 127.0.0.1:7788,127.0.0.1:7789 -ecall ecall_compute -arg 42
package main

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

func main() {
	var (
		dir         = flag.String("dir", "build", "directory with sanitized.so, enclave.sigstruct, enclave.secret.*")
		edlPath     = flag.String("edl", "", "the application EDL file")
		caPath      = flag.String("ca", "machine_ca.pem", "machine attestation root (created if missing)")
		connect     = flag.String("connect", "", "authentication server address (empty = in-process server)")
		servers     = flag.String("servers", "", "comma-separated replicated server addresses (failover pool; overrides -connect)")
		restoreTrys = flag.Int("restore-retries", 3, "full protocol runs before the resilient restore gives up (with -servers)")
		emitServer  = flag.String("emit-server", "", "write the server-side files to this directory and exit")
		ecallName   = flag.String("ecall", "", "ecall to invoke after restoring")
		flags       = flag.Uint64("flags", 0, "elide_restore flags (1 = try sealed, 2 = seal after)")
		dialTimeout = flag.Duration("dial-timeout", elide.DefaultDialTimeout, "server connection timeout")
		reqTimeout  = flag.Duration("request-timeout", elide.DefaultRequestTimeout, "per-request timeout on the server channel")
		retries     = flag.Int("retries", elide.DefaultRetryBudget, "transient-failure retries before giving up")
		pipeline    = flag.Bool("pipeline", true, "offer the pipelined (ProtoV1) restore protocol: attest+meta+data in one flight (falls back automatically against legacy servers)")
		timeout     = flag.Duration("timeout", 0, "overall deadline for the restore (0 = none)")
		traceJSON   = flag.String("trace-json", "", "write the launch trace (one JSON span per line) to this file")
		metricsJSON = flag.String("metrics-json", "", "write the final metrics snapshot to this file")
		auditJSON   = flag.String("audit-json", "", "write the security audit events (one JSON event per line) to this file")
		diagDir     = flag.String("diag-dir", "", "flight recorder: on a terminal restore failure, write a diagnostics bundle (span tree + recent audit events for the failed trace) under this directory")
	)
	var args argList
	flag.Var(&args, "arg", "ecall argument (repeatable)")
	flag.Parse()

	ca, err := sgx.LoadOrCreateCA(*caPath)
	check(err)

	sanitized, err := os.ReadFile(filepath.Join(*dir, elide.FileSanitizedSO))
	check(err)
	metaBlob, err := os.ReadFile(filepath.Join(*dir, elide.FileSecretMeta))
	check(err)
	meta, err := elide.UnmarshalMeta(metaBlob)
	check(err)
	secretData, err := os.ReadFile(filepath.Join(*dir, elide.FileSecretData))
	check(err)

	ssFile, err := os.Open(filepath.Join(*dir, "enclave.sigstruct"))
	check(err)
	var ss sgx.SigStruct
	check(gob.NewDecoder(ssFile).Decode(&ss))
	_ = ssFile.Close() // read-only; the decode above already succeeded

	if *emitServer != "" {
		prot := &elide.Protected{
			SanitizedELF: sanitized,
			Measurement:  ss.MrEnclave,
			Meta:         meta,
			SecretData:   secretData,
		}
		if meta.Hybrid {
			prot.SecretPlain, err = os.ReadFile(filepath.Join(*dir, elide.FileSecretPlain))
			check(err)
		}
		check(prot.WriteServerFiles(*emitServer, ca.PublicKey()))
		fmt.Printf("elide-run: wrote server files to %s (start elide-server -dir %s)\n", *emitServer, *emitServer)
		return
	}

	if *edlPath == "" {
		fatal(fmt.Errorf("elide-run: -edl is required to run the enclave"))
	}
	edlText, err := os.ReadFile(*edlPath)
	check(err)
	iface, err := elide.MergeEDL(string(edlText))
	check(err)

	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	check(err)
	host := sdk.NewHost(platform)
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	audit := obs.NewAuditLog(0)
	audit.SetRegistry(metrics)
	host.Metrics = metrics
	host.Tracer = tracer

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	proto := elide.ProtoLegacy
	if *pipeline {
		proto = elide.ProtoV1
	}
	clientOpts := []elide.ClientOption{
		elide.WithDialTimeout(*dialTimeout),
		elide.WithRequestTimeout(*reqTimeout),
		elide.WithRetryBudget(*retries),
		elide.WithProtocolVersion(proto),
		elide.WithClientMetrics(metrics),
		elide.WithClientTracer(tracer),
	}
	var client elide.SecretChannel
	var direct *elide.DirectClient
	if *servers != "" {
		tracer.SetService("client")
		addrs := strings.Split(*servers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		fc, err := elide.NewFailoverClient(addrs,
			elide.WithFailoverMetrics(metrics),
			elide.WithFailoverAudit(audit),
			elide.WithEndpointClientOptions(clientOpts...),
		)
		check(err)
		defer fc.Close()
		client = fc
		fmt.Printf("elide-run: failover pool of %d authentication servers (restore-retries=%d)\n",
			len(addrs), *restoreTrys)
	} else if *connect != "" {
		tracer.SetService("client")
		tc := elide.NewTCPClient(*connect, clientOpts...)
		defer tc.Close()
		client = tc
		fmt.Printf("elide-run: authentication server at %s (retries=%d, pipeline=%v)\n", *connect, *retries, *pipeline)
	} else {
		cfg := elide.ServerConfig{
			CAPub:             ca.PublicKey(),
			ExpectedMrEnclave: ss.MrEnclave,
			Meta:              meta,
		}
		if !meta.Encrypted {
			cfg.SecretPlain = secretData
		}
		// In-process mode shares one tracer and audit log across both
		// hops, so the exported trace shows the server's session spans
		// joined into the launch trace.
		srv, err := elide.NewServer(cfg,
			elide.WithServerTracer(tracer),
			elide.WithServerAudit(audit),
		)
		check(err)
		direct = &elide.DirectClient{Session: srv.NewSession()}
		client = direct
		fmt.Println("elide-run: using in-process authentication server")
	}

	files := &elide.FileStore{}
	if meta.Encrypted {
		files.SecretData = secretData
	}
	rt := &elide.Runtime{Client: client, Files: files, Ctx: ctx, Metrics: metrics, Audit: audit}
	rt.Install(host)
	encl, err := host.CreateEnclave(sanitized, &ss, iface)
	check(err)
	fmt.Printf("elide-run: enclave initialized, MRENCLAVE %x...\n", encl.Encl.MrEnclave[:8])

	// Every mode runs through the resilient driver so each protocol run has
	// a trace ID the flight recorder can dump; only -servers retries whole
	// protocol runs (the transport's own retry budget covers the rest).
	attempts := 1
	if *servers != "" {
		attempts = *restoreTrys
	}
	out, err := elide.RestoreResilient(ctx, encl, rt, elide.RestoreOptions{
		Flags:       *flags,
		MaxAttempts: attempts,
	})
	code := out.Code
	source := out.Source
	for _, ev := range out.Events {
		fmt.Fprintf(os.Stderr, "elide-run: restore event: %v\n", ev)
	}
	if err == nil && out.Attempts > 1 {
		fmt.Fprintf(os.Stderr, "elide-run: restore needed %d protocol runs\n", out.Attempts)
	}
	if direct != nil {
		_ = direct.Close() // completes the in-process server's session span
	}
	writeObsFiles(tracer, metrics, audit, *traceJSON, *metricsJSON, *auditJSON)
	phaseSummary(tracer)
	if err != nil {
		dumpRuntimeErrs(rt)
		writeDiag(*diagDir, tracer, audit, out.LastTraceID(), err.Error())
		fatal(fmt.Errorf("elide_restore: %w (runtime: %v)", err, rt.LastErr()))
	}
	switch {
	case source == "local":
		fmt.Println("elide-run: restored from the encrypted local file (degraded: no server reachable)")
	case code == elide.RestoreOKServer:
		fmt.Println("elide-run: restored via the authentication server")
	case code == elide.RestoreOKSealed:
		fmt.Println("elide-run: restored from the sealed file")
	default:
		dumpRuntimeErrs(rt)
		writeDiag(*diagDir, tracer, audit, out.LastTraceID(), fmt.Sprintf("restore code %d", code))
		fatal(fmt.Errorf("elide_restore failed with code %d (runtime: %v)", code, rt.LastErr()))
	}

	if *ecallName != "" {
		ret, err := encl.ECall(*ecallName, args...)
		check(err)
		fmt.Printf("elide-run: %s(%v) = %d (%#x)\n", *ecallName, []uint64(args), ret, ret)
	}
}

// phaseSummary prints the per-phase latency breakdown of the restore to
// stderr, in the paper's protocol order, plus the end-to-end total.
func phaseSummary(tr *obs.Tracer) {
	recs := tr.Completed()
	durs := obs.DurationsByName(recs)
	var total time.Duration
	for _, r := range recs {
		if r.Name == "elide_restore" {
			total = r.Duration()
		}
	}
	fmt.Fprintln(os.Stderr, "elide-run: restore phase timings:")
	for _, name := range elide.RestorePhases {
		d, ok := durs[name]
		if !ok {
			continue // e.g. no seal phase without -flags 2
		}
		fmt.Fprintf(os.Stderr, "  %-14s %12v\n", name, d)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "  %-14s %12v\n", "total", total)
	}
}

// writeObsFiles writes the trace JSONL, metrics snapshot, and audit JSONL
// files when the corresponding flags are set. Failures are reported, not
// fatal: the restore outcome matters more than the telemetry files.
func writeObsFiles(tr *obs.Tracer, reg *obs.Registry, audit *obs.AuditLog, tracePath, metricsPath, auditPath string) {
	writeJSONL := func(path, what string, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "elide-run: writing %s: %v\n", path, err)
		} else {
			fmt.Fprintf(os.Stderr, "elide-run: %s written to %s\n", what, path)
		}
	}
	if tracePath != "" {
		writeJSONL(tracePath, "trace", func(f *os.File) error { return tr.WriteJSONL(f) })
	}
	if auditPath != "" {
		writeJSONL(auditPath, "audit log", func(f *os.File) error { return audit.WriteJSONL(f) })
	}
	if metricsPath != "" {
		blob, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(metricsPath, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "elide-run: writing %s: %v\n", metricsPath, err)
		}
	}
}

// writeDiag dumps the flight-recorder bundle for a failed restore: the
// failed trace's span tree plus the most recent audit events, under dir.
// A no-op when -diag-dir is unset.
func writeDiag(dir string, tr *obs.Tracer, audit *obs.AuditLog, traceID uint64, reason string) {
	if dir == "" {
		return
	}
	path, err := obs.WriteDiagBundle(dir, obs.CaptureDiag(tr, audit, traceID, reason, 256))
	if err != nil {
		fmt.Fprintf(os.Stderr, "elide-run: writing diagnostics bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "elide-run: diagnostics bundle written to %s\n", path)
}

// argList collects repeated -arg values.
type argList []uint64

func (a *argList) String() string { return fmt.Sprint([]uint64(*a)) }

func (a *argList) Set(s string) error {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return err
	}
	*a = append(*a, v)
	return nil
}

// dumpRuntimeErrs prints the runtime's recent-error ring, oldest first.
func dumpRuntimeErrs(rt *elide.Runtime) {
	for _, e := range rt.Errs() {
		fmt.Fprintf(os.Stderr, "elide-run: runtime error: %v\n", e)
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
