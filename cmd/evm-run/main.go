// evm-run executes a bare (non-enclave) EVM ELF image built by evmcc,
// streaming its putchar output to stdout and exiting with main's status.
//
//	evmcc -o prog.elf main.c && evm-run prog.elf
package main

import (
	"flag"
	"fmt"
	"os"

	"sgxelide/internal/sdk"
)

func main() {
	maxSteps := flag.Uint64("maxsteps", 0, "instruction budget (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: evm-run [-maxsteps N] prog.elf")
		os.Exit(2)
	}
	elfBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exit, err := sdk.RunBareELF(elfBytes, os.Stdout, *maxSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(int(int32(exit)) & 0xff)
}
