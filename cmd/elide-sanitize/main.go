// elide-sanitize is the SgxElide Sanitizer CLI (Figure 1): it takes an
// unsigned enclave built with the SgxElide runtime, redacts every function
// not on the whitelist, sets PF_W on the text segment, and writes the
// sanitized enclave plus the two secret files. Pass -c to encrypt the
// secret data for local storage (the artifact's flag); without it the data
// stays plaintext and must be deployed to the authentication server.
// -hybrid does both: the server keeps the plaintext and the user machine
// ships the ciphertext, so a restore that attested but lost the data
// fetch can degrade to the local file (DESIGN.md §10).
//
//	elide-sanitize -whitelist whitelist.json -o outdir enclave.so
//	elide-sanitize -c -whitelist whitelist.json -o outdir enclave.so
//	elide-sanitize -hybrid -whitelist whitelist.json -o outdir enclave.so
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sgxelide/internal/elide"
)

func main() {
	var (
		wlPath  = flag.String("whitelist", elide.FileWhitelist, "whitelist.json from elide-whitelist")
		encrypt = flag.Bool("c", false, "encrypt the secret data for local storage")
		hybrid  = flag.Bool("hybrid", false, "remote data plus an encrypted local fallback copy")
		ranges  = flag.Bool("ranges", false, "per-function secret format (space optimization)")
		outDir  = flag.String("o", ".", "output directory")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: elide-sanitize [-c|-hybrid] [-ranges] -whitelist whitelist.json -o dir enclave.so")
		os.Exit(2)
	}

	elfBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	wlBlob, err := os.ReadFile(*wlPath)
	if err != nil {
		fatal(err)
	}
	var wl elide.Whitelist
	if err := json.Unmarshal(wlBlob, &wl); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *wlPath, err))
	}

	opts := elide.SanitizeOptions{EncryptLocal: *encrypt, Hybrid: *hybrid}
	if *ranges {
		opts.Ranges = true
	}
	start := time.Now()
	res, err := elide.Sanitize(elfBytes, wl, opts)
	if err != nil {
		fatal(err)
	}
	took := time.Since(start)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, data []byte, mode os.FileMode) {
		if err := os.WriteFile(filepath.Join(*outDir, name), data, mode); err != nil {
			fatal(err)
		}
	}
	write(elide.FileSanitizedSO, res.SanitizedELF, 0o644)
	write(elide.FileSecretMeta, res.Meta.Marshal(), 0o600)
	write(elide.FileSecretData, res.SecretData, 0o600)
	if *hybrid {
		// The plaintext copy the server serves; elide-run -emit-server
		// forwards it into the server directory and it must never ship
		// to user machines.
		write(elide.FileSecretPlain, res.SecretPlain, 0o600)
	}

	st := res.Stats
	fmt.Printf("elide-sanitize: %s\n", flag.Arg(0))
	fmt.Printf("  sanitize time:       %v\n", took)
	fmt.Printf("  functions total:     %d (whitelisted kept: %d)\n", st.TotalFunctions, st.WhitelistedKept)
	fmt.Printf("  functions sanitized: %d (%d bytes of %d text bytes)\n",
		st.SanitizedFunctions, st.SanitizedBytes, st.TotalTextBytes)
	fmt.Printf("  secret data:         %d bytes (encrypted=%v, format=%d)\n",
		st.SecretDataBytes, res.Meta.Encrypted, res.Meta.Format)
	fmt.Printf("  wrote %s, %s, %s in %s\n",
		elide.FileSanitizedSO, elide.FileSecretMeta, elide.FileSecretData, *outDir)
	fmt.Printf("  NOTE: %s must only ever live on the authentication server.\n", elide.FileSecretMeta)
	if *hybrid {
		fmt.Printf("  NOTE: %s (plaintext) must only ever live on the authentication server.\n", elide.FileSecretPlain)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
