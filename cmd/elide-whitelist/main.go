// elide-whitelist builds the SgxElide dummy enclave (BaseEnclave in the
// artifact) and extracts the whitelist of functions the sanitizer must
// preserve — the SgxElide runtime and the SDK libraries it links. The
// whitelist is the same for every application (paper §4.1) and is written
// as whitelist.json.
//
//	elide-whitelist -o whitelist.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
)

func main() {
	var (
		out     = flag.String("o", elide.FileWhitelist, "output file")
		dumpSO  = flag.String("dummy", "", "also write the dummy enclave image here")
		verbose = flag.Bool("v", false, "list the whitelisted functions")
	)
	flag.Parse()

	res, err := elide.BuildDummyEnclave(sdk.BuildConfig{})
	if err != nil {
		fatal(err)
	}
	if *dumpSO != "" {
		if err := os.WriteFile(*dumpSO, res.ELF, 0o644); err != nil {
			fatal(err)
		}
	}
	wl, err := elide.WhitelistFromELF(res.ELF)
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(wl, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("elide-whitelist: %d functions -> %s\n", len(wl), *out)
	if *verbose {
		for _, n := range wl.Names() {
			fmt.Println("  " + n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
