// elide-server is the SgxElide authentication server daemon (the artifact's
// server.py): it holds the secret metadata (and, in remote-data mode, the
// secret data), verifies each enclave's quote against the pinned CA and the
// expected sanitized measurement, and answers REQUEST_META / REQUEST_DATA
// over AES-GCM channels.
//
//	elide-server -dir serverfiles -listen 127.0.0.1:7788
//
// The serverfiles directory is produced by the deployment pipeline (see
// examples/remoteattest or Protected.WriteServerFiles).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// drains in-flight sessions (bounded by -drain-timeout), and prints a
// metrics snapshot before exiting. -metrics-json additionally writes the
// snapshot to a file for scraping.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
)

func main() {
	var (
		dir          = flag.String("dir", "serverfiles", "directory with ca_pub.pem, enclave.mrenclave, enclave.secret.meta[, enclave.secret.data]")
		listen       = flag.String("listen", "127.0.0.1:7788", "listen address")
		maxSessions  = flag.Int("max-sessions", 256, "maximum concurrent sessions")
		ioTimeout    = flag.Duration("io-timeout", 30*time.Second, "per-connection read/write deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight sessions")
		metricsJSON  = flag.String("metrics-json", "", "write the final metrics snapshot to this file")
	)
	flag.Parse()

	cfg, err := elide.LoadServerConfig(*dir)
	if err != nil {
		fatal(err)
	}
	metrics := obs.NewRegistry()
	srv, err := elide.NewServer(cfg,
		elide.WithMaxSessions(*maxSessions),
		elide.WithIOTimeout(*ioTimeout),
		elide.WithDrainTimeout(*drainTimeout),
		elide.WithServerMetrics(metrics),
	)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	mode := "remote-data"
	if cfg.Meta.Encrypted {
		mode = "local-data (serving metadata + key only)"
	}
	fmt.Printf("elide-server: %s mode, expecting MRENCLAVE %x..., listening on %s\n",
		mode, cfg.ExpectedMrEnclave[:8], l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.Serve(ctx, l)
	snap := metrics.Snapshot()
	if *metricsJSON != "" {
		if blob, jerr := json.MarshalIndent(snap, "", "  "); jerr == nil {
			if werr := os.WriteFile(*metricsJSON, blob, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			}
		}
	}
	if errors.Is(err, elide.ErrServerClosed) {
		fmt.Printf("elide-server: shut down cleanly\n%s", snap)
		return
	}
	if err != nil {
		fmt.Fprint(os.Stderr, snap)
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
