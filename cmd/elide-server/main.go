// elide-server is the SgxElide authentication server daemon (the artifact's
// server.py): it holds the secret metadata (and, in remote-data mode, the
// secret data), verifies each enclave's quote against the pinned CA and the
// expected sanitized measurement, and answers REQUEST_META / REQUEST_DATA
// over AES-GCM channels.
//
//	elide-server -dir serverfiles -listen 127.0.0.1:7788
//
// The serverfiles directory is produced by the deployment pipeline (see
// examples/remoteattest or Protected.WriteServerFiles).
//
// With -secrets-dir the daemon serves many sanitized enclaves at once: the
// directory holds one deployment subdirectory per enclave (each in the
// WriteServerFiles layout), secrets are released strictly by attested
// MRENCLAVE, and the directory is re-scanned every -rescan-interval so
// deployments added, replaced, or deleted on disk are picked up without a
// restart:
//
//	elide-server -secrets-dir deployments -listen 127.0.0.1:7788
//
// Replication is share-nothing for secrets: for availability, start several
// daemons on the same serverfiles (or secrets) directory under different
// -listen addresses — possibly on different hosts, each with its own copy
// of the files — and give clients the whole fleet via elide-run -servers.
// Every replica can answer any restore independently. Session state is
// per-replica by default (after a failover the client pays a full
// re-attest); with -peers and a shared -fleet-key the replicas replicate
// their session-resumption records to each other (wrapped under the fleet
// sealing key — channel keys never cross the wire in cleartext), so any
// replica can resume any client's attested channel and a failover costs
// zero extra attestation flights (DESIGN §14):
//
//	elide-server -listen :7788 -peers host2:7788,host3:7788 -fleet-key fleet.key
//
// With -gossip-advertise the static peer list becomes a seed list: the
// replicas run SWIM-style failure detection over the same peer links,
// discover the whole fleet from any one live seed, declare unreachable
// members suspect and then dead (and drop them from client endpoint
// pools), and anti-entropy-sync resume records so a cold-started replica
// converges without waiting for client traffic (DESIGN §15):
//
//	elide-server -listen :7788 -gossip-advertise host1:7788 \
//	    -peers host2:7788 -fleet-key fleet.key
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// drains in-flight sessions (bounded by -drain-timeout), and prints a
// metrics snapshot before exiting. -metrics-json additionally writes the
// snapshot to a file on shutdown (and, with -metrics-interval, periodically
// while serving). -admin-addr starts a telemetry HTTP listener serving
// /metrics (Prometheus text; ?format=json for the JSON snapshot), /healthz,
// /trace (recent session spans), and /debug/pprof.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
)

func main() {
	var (
		dir          = flag.String("dir", "serverfiles", "directory with ca_pub.pem, enclave.mrenclave, enclave.secret.meta[, enclave.secret.data]")
		secretsDir   = flag.String("secrets-dir", "", "multi-enclave mode: directory of per-enclave deployment subdirs (overrides -dir)")
		rescanEvery  = flag.Duration("rescan-interval", 30*time.Second, "how often -secrets-dir is re-scanned for new/changed/removed deployments (0 = never)")
		listen       = flag.String("listen", "127.0.0.1:7788", "listen address")
		adminAddr    = flag.String("admin-addr", "", "telemetry HTTP listen address for /metrics, /healthz, /trace, /debug/pprof (empty = disabled)")
		maxSessions  = flag.Int("max-sessions", 256, "maximum concurrent sessions")
		ioTimeout    = flag.Duration("io-timeout", 30*time.Second, "per-connection read/write deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight sessions")
		metricsJSON  = flag.String("metrics-json", "", "write the metrics snapshot to this file on shutdown (and periodically with -metrics-interval)")
		metricsEvery = flag.Duration("metrics-interval", 0, "also rewrite -metrics-json at this interval while serving (0 = only on shutdown)")

		enclaveRPS      = flag.Float64("enclave-rps", 0, "per-enclave fresh-attestation rate limit in attests/second (0 = unlimited); excess clients get a typed overload with a retry-after hint")
		enclaveBurst    = flag.Int("enclave-burst", 0, "per-enclave attest burst allowance for -enclave-rps (0 = the rate rounded up)")
		enclaveInflight = flag.Int("enclave-inflight", 0, "per-enclave cap on concurrently served channel requests (0 = unlimited)")

		peers     = flag.String("peers", "", "comma-separated replica addresses to replicate session-resumption records to/from (requires -fleet-key); with -gossip-advertise they double as gossip seeds")
		fleetKey  = flag.String("fleet-key", "", "path to the shared fleet sealing key (16/24/32 raw bytes, or that many hex-encoded); enables accepting resume replication")
		resumeTTL = flag.Duration("resume-ttl", elide.DefaultResumeTTL, "how long a cached session may be resumed before a full re-attest is required (0 = no expiry)")

		gossipAdvertise = flag.String("gossip-advertise", "", "address this replica advertises to the fleet; enables SWIM gossip membership and anti-entropy resume sync (requires -fleet-key; -peers become the seeds)")
		gossipInterval  = flag.Duration("gossip-interval", elide.DefaultGossipInterval, "gossip probe/anti-entropy tick for -gossip-advertise")
		suspectTimeout  = flag.Duration("suspect-timeout", elide.DefaultSuspectTimeout, "how long an unrefuted suspicion lasts before the member is declared dead")
		peerCooldown    = flag.Duration("peer-cooldown", elide.DefaultPeerCooldown, "how long to leave a peer alone after it refused the replication handshake (a legacy binary)")

		auditFile  = flag.String("audit-file", "", "append security audit events (one JSON event per line) to this file, rotated at -audit-max-bytes")
		auditBytes = flag.Int64("audit-max-bytes", 8<<20, "rotate -audit-file (to <file>.1) when it exceeds this size")
		diagDir    = flag.String("diag-dir", "", "flight recorder: on shutdown after security-relevant audit events (refusals, torn restores, corrupt seals), write a diagnostics bundle under this directory")
	)
	flag.Parse()

	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	tracer.SetService("server")
	audit := obs.NewAuditLog(0)
	audit.SetRegistry(metrics)
	if *auditFile != "" {
		if err := audit.SetFileSink(*auditFile, *auditBytes); err != nil {
			fatal(err)
		}
		defer audit.CloseSink()
		fmt.Printf("elide-server: audit events appended to %s\n", *auditFile)
	}
	opts := []elide.ServerOption{
		elide.WithMaxSessions(*maxSessions),
		elide.WithIOTimeout(*ioTimeout),
		elide.WithDrainTimeout(*drainTimeout),
		elide.WithServerMetrics(metrics),
		elide.WithServerTracer(tracer),
		elide.WithServerAudit(audit),
	}
	if *enclaveRPS > 0 {
		opts = append(opts, elide.WithEnclaveRateLimit(*enclaveRPS, *enclaveBurst))
	}
	if *enclaveInflight > 0 {
		opts = append(opts, elide.WithEnclaveInflightLimit(*enclaveInflight))
	}
	opts = append(opts, elide.WithResumeTTL(*resumeTTL))
	if *peers != "" && *fleetKey == "" {
		fatal(fmt.Errorf("elide-server: -peers requires -fleet-key; resume records only cross the wire wrapped under the fleet sealing key"))
	}
	if *gossipAdvertise != "" && *fleetKey == "" {
		fatal(fmt.Errorf("elide-server: -gossip-advertise requires -fleet-key; membership summaries only cross the wire sealed under the fleet key"))
	}
	if *fleetKey != "" {
		key, err := loadFleetKey(*fleetKey)
		if err != nil {
			fatal(err)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		opts = append(opts, elide.WithResumeReplication(key, peerList...),
			elide.WithPeerCooldown(*peerCooldown))
		if len(peerList) > 0 {
			fmt.Printf("elide-server: replicating session resumption to %s\n", strings.Join(peerList, ", "))
		} else {
			fmt.Printf("elide-server: accepting session-resumption replication (no push peers)\n")
		}
		if *gossipAdvertise != "" {
			opts = append(opts,
				elide.WithGossip(*gossipAdvertise),
				elide.WithGossipInterval(*gossipInterval),
				elide.WithSuspectTimeout(*suspectTimeout))
			fmt.Printf("elide-server: gossiping fleet membership as %s (interval %s, suspect timeout %s)\n",
				*gossipAdvertise, *gossipInterval, *suspectTimeout)
		}
	}
	var srv *elide.Server
	var err error
	if *secretsDir != "" {
		store := elide.NewSecretStore()
		store.SetAuditLog(audit)
		rep, err := store.LoadDir(*secretsDir)
		if err != nil {
			fatal(err)
		}
		for name, lerr := range rep.Failed {
			fmt.Fprintf(os.Stderr, "elide-server: skipping deployment %s: %v\n", name, lerr)
		}
		if store.Len() == 0 {
			fatal(fmt.Errorf("elide-server: no loadable deployments under %s", *secretsDir))
		}
		srv, err = elide.NewMultiServer(store.CA(), store, opts...)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg, err := elide.LoadServerConfig(*dir)
		if err != nil {
			fatal(err)
		}
		srv, err = elide.NewServer(cfg, opts...)
		if err != nil {
			fatal(err)
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	if *secretsDir != "" {
		fmt.Printf("elide-server: multi-enclave mode, %d deployments from %s, listening on %s\n",
			srv.Store().Len(), *secretsDir, l.Addr())
		for _, e := range srv.Store().Entries() {
			printEntry(e)
		}
	} else {
		e := srv.Store().Entries()[0]
		mode := "remote-data"
		if e.Meta.Encrypted {
			mode = "local-data (serving metadata + key only)"
		}
		fmt.Printf("elide-server: %s mode, expecting MRENCLAVE %x..., listening on %s\n",
			mode, e.MrEnclave[:8], l.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *secretsDir != "" && *rescanEvery > 0 {
		go srv.Store().Watch(ctx, *secretsDir, *rescanEvery, func(rep elide.DirReport) {
			fmt.Printf("elide-server: rescan of %s: %s\n", *secretsDir, rep)
			for _, e := range srv.Store().Entries() {
				printEntry(e)
			}
		})
	}

	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		admin := &http.Server{Handler: obs.AdminHandler(metrics, tracer, "sgxelide",
			obs.WithAuditLog(audit),
			obs.WithHealthCheck("store", srv.Store().HealthCheck),
			obs.WithHealthCheck("replication", srv.ReplicationHealth),
		)}
		go func() {
			if err := admin.Serve(al); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "elide-server: admin listener: %v\n", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			admin.Shutdown(shctx)
		}()
		fmt.Printf("elide-server: telemetry on http://%s/metrics\n", al.Addr())
	}

	if *metricsEvery > 0 && *metricsJSON != "" {
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					writeSnapshot(*metricsJSON, metrics.Snapshot())
				}
			}
		}()
	}

	err = srv.Serve(ctx, l)
	snap := metrics.Snapshot()
	if *metricsJSON != "" {
		writeSnapshot(*metricsJSON, snap)
	}
	writeShutdownDiag(*diagDir, tracer, audit)
	if errors.Is(err, elide.ErrServerClosed) {
		fmt.Printf("elide-server: shut down cleanly\n%s", snap)
		return
	}
	if err != nil {
		fmt.Fprint(os.Stderr, snap)
		fatal(err)
	}
}

// writeSnapshot atomically replaces path with the JSON-encoded snapshot so
// a scraper never reads a half-written file.
func writeSnapshot(path string, snap obs.Snapshot) {
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// writeShutdownDiag is the server side of the flight recorder: if the run
// recorded security-relevant audit events — attestation refusals, torn
// restores, corrupt sealed blobs, rescan failures — the whole span ring and
// the recent audit tail are bundled under dir for postmortem. A clean run
// (or an unset -diag-dir) writes nothing.
func writeShutdownDiag(dir string, tracer *obs.Tracer, audit *obs.AuditLog) {
	if dir == "" {
		return
	}
	counts := audit.Counts()
	var suspect uint64
	for _, typ := range []string{
		obs.AuditAttestRefused, obs.AuditTornRestore,
		obs.AuditSealedCorrupt, obs.AuditStoreRescanFailed,
	} {
		suspect += counts[typ]
	}
	if suspect == 0 {
		return
	}
	reason := fmt.Sprintf("shutdown after %d security-relevant audit events", suspect)
	path, err := obs.WriteDiagBundle(dir, obs.CaptureDiag(tracer, audit, 0, reason, 512))
	if err != nil {
		fmt.Fprintf(os.Stderr, "elide-server: writing diagnostics bundle: %v\n", err)
		return
	}
	fmt.Printf("elide-server: diagnostics bundle written to %s\n", path)
}

// loadFleetKey reads the shared fleet sealing key from path: either raw
// key bytes (16/24/32) or their hex encoding (whitespace-trimmed), so
// keys can be generated with `head -c 32 /dev/urandom` or `openssl rand
// -hex 32` alike.
func loadFleetKey(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("elide-server: reading -fleet-key: %w", err)
	}
	switch len(blob) {
	case 16, 24, 32:
		return blob, nil
	}
	trimmed := strings.TrimSpace(string(blob))
	key, err := hex.DecodeString(trimmed)
	if err != nil {
		return nil, fmt.Errorf("elide-server: -fleet-key %s is neither raw nor hex key bytes: %w", path, err)
	}
	switch len(key) {
	case 16, 24, 32:
		return key, nil
	}
	return nil, fmt.Errorf("elide-server: -fleet-key %s holds %d key bytes; want 16, 24, or 32", path, len(key))
}

// printEntry lists one registered deployment.
func printEntry(e *elide.SecretEntry) {
	mode := "remote-data"
	if e.Meta.Encrypted {
		mode = "local-data"
	}
	name := e.Name
	if name == "" {
		name = "(manual)"
	}
	fmt.Printf("elide-server:   %s  MRENCLAVE %x...  %s\n", name, e.MrEnclave[:8], mode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
