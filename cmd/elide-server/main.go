// elide-server is the SgxElide authentication server daemon (the artifact's
// server.py): it holds the secret metadata (and, in remote-data mode, the
// secret data), verifies each enclave's quote against the pinned CA and the
// expected sanitized measurement, and answers REQUEST_META / REQUEST_DATA
// over AES-GCM channels.
//
//	elide-server -dir serverfiles -listen 127.0.0.1:7788
//
// The serverfiles directory is produced by the deployment pipeline (see
// examples/remoteattest or Protected.WriteServerFiles).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"sgxelide/internal/elide"
)

func main() {
	var (
		dir    = flag.String("dir", "serverfiles", "directory with ca_pub.pem, enclave.mrenclave, enclave.secret.meta[, enclave.secret.data]")
		listen = flag.String("listen", "127.0.0.1:7788", "listen address")
	)
	flag.Parse()

	cfg, err := elide.LoadServerConfig(*dir)
	if err != nil {
		fatal(err)
	}
	srv, err := elide.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	mode := "remote-data"
	if cfg.Meta.Encrypted {
		mode = "local-data (serving metadata + key only)"
	}
	fmt.Printf("elide-server: %s mode, expecting MRENCLAVE %x..., listening on %s\n",
		mode, cfg.ExpectedMrEnclave[:8], l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
