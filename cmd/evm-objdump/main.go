// evm-objdump disassembles an EVM ELF image — the attacker's-eye view of an
// enclave file before initialization (the capability SgxElide defeats).
// Run it on an enclave before and after elide-sanitize to see the secret
// functions disappear.
//
//	evm-objdump enclave.so
//	evm-objdump -syms enclave.so     # symbol table only
//	evm-objdump -headers enclave.so  # program headers (note PF_W after sanitizing)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
)

func main() {
	var (
		symsOnly = flag.Bool("syms", false, "print the symbol table only")
		headers  = flag.Bool("headers", false, "print program headers only")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: evm-objdump [-syms|-headers] image.elf")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := elf.Read(raw)
	if err != nil {
		fatal(err)
	}

	switch {
	case *headers:
		fmt.Println("Program Headers:")
		fmt.Printf("  %-8s %-5s %18s %10s %10s\n", "Type", "Flags", "VirtAddr", "FileSiz", "MemSiz")
		for _, ph := range f.Phdrs {
			fmt.Printf("  %-8s %-5s %#18x %10d %10d\n",
				phType(ph.Type), phFlags(ph.Flags), ph.Vaddr, ph.Filesz, ph.Memsz)
		}
	case *symsOnly:
		syms := append([]elf.Sym(nil), f.Symbols...)
		sort.Slice(syms, func(i, j int) bool { return syms[i].Value < syms[j].Value })
		fmt.Printf("%18s %8s %-7s %-6s %s\n", "Value", "Size", "Type", "Bind", "Name")
		for _, s := range syms {
			fmt.Printf("%#18x %8d %-7s %-6s %s\n", s.Value, s.Size, symType(s.Type), symBind(s.Bind), s.Name)
		}
	default:
		dis, err := sdk.Disassemble(raw)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s:\tfile format elf64-evm\n", flag.Arg(0))
		fmt.Printf("entry: %#x\n\nDisassembly of section .text:\n", f.Entry)
		fmt.Print(dis)
	}
}

func phType(t uint32) string {
	if t == elf.PTLoad {
		return "LOAD"
	}
	return fmt.Sprintf("%#x", t)
}

func phFlags(fl uint32) string {
	b := []byte("---")
	if fl&elf.PFR != 0 {
		b[0] = 'R'
	}
	if fl&elf.PFW != 0 {
		b[1] = 'W'
	}
	if fl&elf.PFX != 0 {
		b[2] = 'E'
	}
	return string(b)
}

func symType(t byte) string {
	switch t {
	case elf.STTFunc:
		return "FUNC"
	case elf.STTObject:
		return "OBJECT"
	default:
		return "NOTYPE"
	}
}

func symBind(b byte) string {
	if b == elf.STBGlobal {
		return "GLOBAL"
	}
	return "LOCAL"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
