// Command elide-vet is the SGXElide security vet suite: four analyzers
// that mechanically enforce the enclave secrecy invariants the rest of
// the codebase upholds by convention.
//
//	constanttime  secret comparisons must use crypto/subtle (the PR 3
//	              channel-binding timing bug, as a class)
//	secretflow    key material and secret plaintext must not reach
//	              logs, errors, or the observability name space
//	padleak       boundary-crossing structs must have no implicit
//	              padding (uninitialized-memory leak, Lee & Kim)
//	wipe          decrypted/derived secret buffers must be zeroized
//	              on every exit path unless ownership is handed off
//
// Build it once and hand it to go vet:
//
//	go build -o bin/elide-vet ./cmd/elide-vet
//	go vet -vettool=$(pwd)/bin/elide-vet ./...
//
// or just run "make vet-security". Audited false positives are
// suppressed in place with a mandatory reason:
//
//	//elide:vet-ignore constanttime EINIT-time check; measurement is public
package main

import (
	"sgxelide/internal/analysis/constanttime"
	"sgxelide/internal/analysis/padleak"
	"sgxelide/internal/analysis/secretflow"
	"sgxelide/internal/analysis/unitchecker"
	"sgxelide/internal/analysis/wipe"
)

func main() {
	unitchecker.Main(
		constanttime.Analyzer,
		secretflow.Analyzer,
		padleak.Analyzer,
		wipe.Analyzer,
	)
}
