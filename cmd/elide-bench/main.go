// elide-bench regenerates the SgxElide paper's evaluation: Table 1
// (benchmark and sanitizer statistics), Table 2 (sanitize/restore times,
// mean ± σ over -iters runs), and Figures 3 and 4 (normalized end-to-end
// overhead with remote and local data).
//
// It can also benchmark the authentication-server transport itself —
// concurrent TCP restores with attest/request latency percentiles — and
// emit the result as machine-readable JSON:
//
//	elide-bench -all
//	elide-bench -table2 -iters 10
//	elide-bench -server -server-clients 16 -server-out BENCH_server.json
//	elide-bench -multi -multi-enclaves 4 -multi-out BENCH_multi.json
//	elide-bench -chaos -chaos-replicas 3 -chaos-out BENCH_chaos.json
//	elide-bench -churn -churn-replicas 3 -churn-out BENCH_churn.json
//	elide-bench -resume -resume-sessions 16 -resume-out BENCH_resume.json
//	elide-bench -load -load-rate 500 -load-restores 10000 -load-out BENCH_load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sgxelide/internal/bench"
	"sgxelide/internal/obs"
)

func main() {
	var (
		t1    = flag.Bool("table1", false, "reproduce Table 1")
		t2    = flag.Bool("table2", false, "reproduce Table 2")
		f3    = flag.Bool("fig3", false, "reproduce Figure 3 (remote data)")
		f4    = flag.Bool("fig4", false, "reproduce Figure 4 (local data)")
		all   = flag.Bool("all", false, "reproduce everything")
		iters = flag.Int("iters", 10, "runs per measurement (the paper uses 10)")

		server      = flag.Bool("server", false, "benchmark the TCP authentication-server transport")
		srvProgram  = flag.String("server-program", "Sha1", "benchmark program for -server")
		srvClients  = flag.Int("server-clients", 16, "concurrent clients for -server")
		srvSessions = flag.Int("server-sessions", 8, "server session cap for -server")
		srvOut      = flag.String("server-out", "BENCH_server.json", "JSON output path for -server")

		multi         = flag.Bool("multi", false, "benchmark multi-enclave serving: N distinct sanitized enclaves against one server")
		multiEnclaves = flag.Int("multi-enclaves", 4, "distinct sanitized enclaves for -multi")
		multiClients  = flag.Int("multi-clients", 4, "concurrent clients per enclave for -multi")
		multiOut      = flag.String("multi-out", "BENCH_multi.json", "JSON output path for -multi")

		chaos         = flag.Bool("chaos", false, "chaos-test restores against replicated servers with kills, restarts and injected faults")
		chaosProgram  = flag.String("chaos-program", "Sha1", "benchmark program for -chaos")
		chaosReplicas = flag.Int("chaos-replicas", 3, "server replicas for -chaos")
		chaosRestores = flag.Int("chaos-restores", 48, "total restores for -chaos")
		chaosWorkers  = flag.Int("chaos-workers", 8, "concurrent restore workers for -chaos")
		chaosOut      = flag.String("chaos-out", "BENCH_chaos.json", "JSON output path for -chaos")

		churn         = flag.Bool("churn", false, "churn-test a gossip fleet: kill, cold-add and restart members under restore load")
		churnProgram  = flag.String("churn-program", "Sha1", "benchmark program for -churn")
		churnReplicas = flag.Int("churn-replicas", 3, "initial gossip members for -churn")
		churnRestores = flag.Int("churn-restores", 48, "total restores for -churn")
		churnWorkers  = flag.Int("churn-workers", 8, "concurrent restore workers for -churn")
		churnSessions = flag.Int("churn-sessions", 8, "pre-established sessions the cold member must resume for -churn")
		churnOut      = flag.String("churn-out", "BENCH_churn.json", "JSON output path for -churn")

		resume         = flag.Bool("resume", false, "benchmark failover resume: kill the attested replica, resume every session on a peer, replicated vs unreplicated")
		resumeProgram  = flag.String("resume-program", "Sha1", "benchmark program for -resume")
		resumeSessions = flag.Int("resume-sessions", 16, "sessions to establish and resume for -resume")
		resumeOut      = flag.String("resume-out", "BENCH_resume.json", "JSON output path for -resume")

		load         = flag.Bool("load", false, "open-loop load test: offered-rate restores against one server, pipelined vs legacy protocol")
		loadProgram  = flag.String("load-program", "Sha1", "benchmark program for -load")
		loadRate     = flag.Float64("load-rate", 500, "offered arrival rate for -load (restores/second)")
		loadRestores = flag.Int("load-restores", 10000, "total restores offered per protocol for -load")
		loadSessions = flag.Int("load-sessions", 1024, "server session cap for -load")
		loadOnlyV1   = flag.Bool("load-skip-legacy", false, "measure only the pipelined protocol for -load")
		loadOut      = flag.String("load-out", "BENCH_load.json", "JSON output path for -load")

		phases    = flag.Bool("phases", false, "measure the per-phase restore latency breakdown")
		phProgram = flag.String("phases-program", "Sha1", "benchmark program for -phases")
		phOut     = flag.String("phases-out", "BENCH_restore_phases.json", "JSON output path for -phases")
		traceDemo = flag.Bool("trace-demo", false, "run one traced local-data restore and print the span tree")

		obsDemo     = flag.Bool("obs-demo", false, "run one traced+audited restore; write the merged cross-process trace and the audit log as JSONL artifacts and print the span tree")
		obsTraceOut = flag.String("obs-trace-out", "BENCH_trace.jsonl", "merged trace JSONL output path for -obs-demo")
		obsAuditOut = flag.String("obs-audit-out", "BENCH_audit.jsonl", "audit JSONL output path for -obs-demo")

		validateAudit = flag.String("validate-audit", "", "validate an audit JSONL file against the current schema and exit")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f3, *f4, *server, *multi, *chaos, *churn, *resume, *phases = true, true, true, true, true, true, true, true, true, true
	}
	if *validateAudit != "" {
		f, err := os.Open(*validateAudit)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateAuditJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w (%d events valid before the failure)", *validateAudit, err, n))
		}
		fmt.Printf("%s: %d audit events, schema %d, all valid\n", *validateAudit, n, obs.AuditSchema)
		return
	}
	if !*t1 && !*t2 && !*f3 && !*f4 && !*server && !*multi && !*chaos && !*churn && !*resume && !*load && !*phases && !*traceDemo && !*obsDemo {
		flag.Usage()
		os.Exit(2)
	}

	env, err := bench.NewEnv()
	if err != nil {
		fatal(err)
	}

	if *t1 {
		rows, err := bench.Table1(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderTable1(rows))
	}
	if *t2 {
		fmt.Printf("(measuring Table 2, %d iterations per cell...)\n", *iters)
		rows, err := bench.Table2(env, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderTable2(rows))
	}
	if *f3 {
		fmt.Printf("(measuring Figure 3, %d runs per bar...)\n", *iters)
		rows, err := bench.Figures(env, false, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFigure("Figure 3. Overhead with remote data (w/ SgxElide vs w/ SGX).", rows))
	}
	if *f4 {
		fmt.Printf("(measuring Figure 4, %d runs per bar...)\n", *iters)
		rows, err := bench.Figures(env, true, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFigure("Figure 4. Overhead with local data (w/ SgxElide vs w/ SGX).", rows))
	}
	if *server {
		fmt.Printf("(benchmarking server transport: %d clients, %d-session cap...)\n",
			*srvClients, *srvSessions)
		res, err := bench.ServerBench(env, bench.ServerBenchConfig{
			Program:     *srvProgram,
			Clients:     *srvClients,
			MaxSessions: *srvSessions,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*srvOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *srvOut)
	}
	if *multi {
		fmt.Printf("(benchmarking multi-enclave serving: %d enclaves x %d clients...)\n",
			*multiEnclaves, *multiClients)
		res, err := bench.MultiBench(env, bench.MultiBenchConfig{
			Enclaves:   *multiEnclaves,
			ClientsPer: *multiClients,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*multiOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *multiOut)
	}
	if *chaos {
		fmt.Printf("(chaos-testing restores: %d replicas, %d restores, %d workers...)\n",
			*chaosReplicas, *chaosRestores, *chaosWorkers)
		res, err := bench.ChaosBench(env, bench.ChaosConfig{
			Program:  *chaosProgram,
			Replicas: *chaosReplicas,
			Restores: *chaosRestores,
			Workers:  *chaosWorkers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*chaosOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *chaosOut)
	}
	if *churn {
		fmt.Printf("(churn-testing the gossip fleet: %d members, %d restores, %d workers...)\n",
			*churnReplicas, *churnRestores, *churnWorkers)
		res, err := bench.ChurnBench(env, bench.ChurnConfig{
			Program:  *churnProgram,
			Replicas: *churnReplicas,
			Restores: *churnRestores,
			Workers:  *churnWorkers,
			Sessions: *churnSessions,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*churnOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *churnOut)
	}
	if *resume {
		fmt.Printf("(benchmarking failover resume: %d sessions, replicated vs baseline...)\n",
			*resumeSessions)
		res, err := bench.ResumeBench(env, bench.ResumeConfig{
			Program:  *resumeProgram,
			Sessions: *resumeSessions,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*resumeOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *resumeOut)
	}
	if *load {
		fmt.Printf("(load-testing the authentication server: %d restores at %.0f rps...)\n",
			*loadRestores, *loadRate)
		res, err := bench.LoadBench(env, bench.LoadBenchConfig{
			Program:     *loadProgram,
			Rate:        *loadRate,
			Restores:    *loadRestores,
			MaxSessions: *loadSessions,
			SkipLegacy:  *loadOnlyV1,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*loadOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *loadOut)
	}
	if *phases {
		fmt.Printf("(measuring restore phase breakdown, %d iterations per mode...)\n", *iters)
		res, err := bench.PhasesBench(env, bench.PhasesBenchConfig{
			Program: *phProgram,
			Iters:   *iters,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*phOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *phOut)
	}
	if *traceDemo {
		tree, err := bench.TraceDemo(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tree)
	}
	if *obsDemo {
		demo, err := bench.ObsDemo(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(demo.Tree)
		if err := writeJSONL(*obsTraceOut, func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, rec := range demo.Spans {
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fatal(err)
		}
		if err := writeJSONL(*obsAuditOut, func(f *os.File) error { return demo.Audit.WriteJSONL(f) }); err != nil {
			fatal(err)
		}
		// Self-check: the artifact this run just wrote must pass the same
		// schema gate CI applies to it.
		f, err := os.Open(*obsAuditOut)
		if err != nil {
			fatal(err)
		}
		n, verr := obs.ValidateAuditJSONL(f)
		f.Close()
		if verr != nil {
			fatal(fmt.Errorf("%s failed schema validation: %w", *obsAuditOut, verr))
		}
		fmt.Printf("wrote %s (%d spans) and %s (%d audit events, schema-valid)\n",
			*obsTraceOut, len(demo.Spans), *obsAuditOut, n)
	}
}

// writeJSONL creates path and streams JSONL into it via write.
func writeJSONL(path string, write func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
