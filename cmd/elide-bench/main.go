// elide-bench regenerates the SgxElide paper's evaluation: Table 1
// (benchmark and sanitizer statistics), Table 2 (sanitize/restore times,
// mean ± σ over -iters runs), and Figures 3 and 4 (normalized end-to-end
// overhead with remote and local data).
//
//	elide-bench -all
//	elide-bench -table2 -iters 10
package main

import (
	"flag"
	"fmt"
	"os"

	"sgxelide/internal/bench"
)

func main() {
	var (
		t1    = flag.Bool("table1", false, "reproduce Table 1")
		t2    = flag.Bool("table2", false, "reproduce Table 2")
		f3    = flag.Bool("fig3", false, "reproduce Figure 3 (remote data)")
		f4    = flag.Bool("fig4", false, "reproduce Figure 4 (local data)")
		all   = flag.Bool("all", false, "reproduce everything")
		iters = flag.Int("iters", 10, "runs per measurement (the paper uses 10)")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f3, *f4 = true, true, true, true
	}
	if !*t1 && !*t2 && !*f3 && !*f4 {
		flag.Usage()
		os.Exit(2)
	}

	env, err := bench.NewEnv()
	if err != nil {
		fatal(err)
	}

	if *t1 {
		rows, err := bench.Table1(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderTable1(rows))
	}
	if *t2 {
		fmt.Printf("(measuring Table 2, %d iterations per cell...)\n", *iters)
		rows, err := bench.Table2(env, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderTable2(rows))
	}
	if *f3 {
		fmt.Printf("(measuring Figure 3, %d runs per bar...)\n", *iters)
		rows, err := bench.Figures(env, false, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFigure("Figure 3. Overhead with remote data (w/ SgxElide vs w/ SGX).", rows))
	}
	if *f4 {
		fmt.Printf("(measuring Figure 4, %d runs per bar...)\n", *iters)
		rows, err := bench.Figures(env, true, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFigure("Figure 4. Overhead with local data (w/ SgxElide vs w/ SGX).", rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
